package ml

import (
	"math"
	"math/rand"
	"testing"

	"sqlml/internal/cluster"
	"sqlml/internal/dfs"
	"sqlml/internal/hadoopfmt"
	"sqlml/internal/row"
)

// syntheticBinary builds a linearly separable-ish binary dataset: label 1
// when 2*x0 - x1 + noise > 0.
func syntheticBinary(n, parts int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{Parts: make([][]LabeledPoint, parts), NumFeatures: 2}
	for i := 0; i < n; i++ {
		x0 := rng.NormFloat64()
		x1 := rng.NormFloat64()
		label := 0.0
		if 2*x0-x1+0.1*rng.NormFloat64() > 0 {
			label = 1.0
		}
		p := LabeledPoint{Label: label, Features: []float64{x0, x1}}
		d.Parts[i%parts] = append(d.Parts[i%parts], p)
	}
	return d
}

func TestSVMLearnsSeparableData(t *testing.T) {
	d := syntheticBinary(2000, 4, 1)
	cfg := DefaultSGD()
	cfg.Iterations = 150
	m, err := TrainSVMWithSGD(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	acc := Accuracy(d, m.Predict)
	if acc < 0.95 {
		t.Errorf("SVM train accuracy = %.3f, want >= 0.95", acc)
	}
	// Fresh sample from the same distribution generalizes.
	test := syntheticBinary(500, 2, 99)
	if acc := Accuracy(test, m.Predict); acc < 0.93 {
		t.Errorf("SVM test accuracy = %.3f", acc)
	}
}

func TestSVMDeterministicWithSeed(t *testing.T) {
	d := syntheticBinary(500, 4, 2)
	cfg := DefaultSGD()
	m1, err := TrainSVMWithSGD(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := TrainSVMWithSGD(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m1.Weights {
		if m1.Weights[i] != m2.Weights[i] {
			t.Fatalf("weights differ across runs: %v vs %v", m1.Weights, m2.Weights)
		}
	}
	if m1.Intercept != m2.Intercept {
		t.Error("intercepts differ across runs")
	}
}

func TestSVMRejectsNonBinaryLabels(t *testing.T) {
	d := &Dataset{Parts: [][]LabeledPoint{{{Label: 2, Features: []float64{1}}}}, NumFeatures: 1}
	if _, err := TrainSVMWithSGD(d, DefaultSGD()); err == nil {
		t.Error("non-binary labels accepted (recoded 1/2 labels must be remapped)")
	}
}

func TestLogisticRegressionLearnsAndCalibrates(t *testing.T) {
	d := syntheticBinary(2000, 4, 3)
	cfg := DefaultSGD()
	cfg.Iterations = 200
	cfg.StepSize = 2
	m, err := TrainLogisticRegressionWithSGD(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(d, m.Predict); acc < 0.94 {
		t.Errorf("logistic accuracy = %.3f", acc)
	}
	// Far on the positive side → probability near 1.
	if p := m.Probability([]float64{5, -5}); p < 0.9 {
		t.Errorf("P(strong positive) = %.3f", p)
	}
	if p := m.Probability([]float64{-5, 5}); p > 0.1 {
		t.Errorf("P(strong negative) = %.3f", p)
	}
}

func TestLinearRegressionRecoversCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := &Dataset{Parts: make([][]LabeledPoint, 4), NumFeatures: 2}
	for i := 0; i < 3000; i++ {
		x0, x1 := rng.NormFloat64(), rng.NormFloat64()
		y := 3*x0 - 2*x1 + 1 + 0.01*rng.NormFloat64()
		d.Parts[i%4] = append(d.Parts[i%4], LabeledPoint{Label: y, Features: []float64{x0, x1}})
	}
	cfg := DefaultSGD()
	cfg.Iterations = 400
	cfg.StepSize = 0.5
	cfg.RegParam = 0
	m, err := TrainLinearRegressionWithSGD(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Weights[0]-3) > 0.2 || math.Abs(m.Weights[1]+2) > 0.2 || math.Abs(m.Intercept-1) > 0.2 {
		t.Errorf("coefficients: w=%v b=%v, want [3 -2] 1", m.Weights, m.Intercept)
	}
	if mse := MeanSquaredError(d, m.Predict); mse > 0.05 {
		t.Errorf("MSE = %v", mse)
	}
}

func TestSGDConfigValidation(t *testing.T) {
	d := syntheticBinary(50, 2, 5)
	bad := []SGDConfig{
		{Iterations: 0, StepSize: 1, MiniBatchFraction: 1},
		{Iterations: 10, StepSize: 0, MiniBatchFraction: 1},
		{Iterations: 10, StepSize: 1, MiniBatchFraction: 0},
		{Iterations: 10, StepSize: 1, MiniBatchFraction: 1.5},
	}
	for i, cfg := range bad {
		if _, err := TrainSVMWithSGD(d, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := TrainSVMWithSGD(&Dataset{NumFeatures: 1}, DefaultSGD()); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestMiniBatchStillLearns(t *testing.T) {
	d := syntheticBinary(2000, 4, 6)
	cfg := DefaultSGD()
	cfg.MiniBatchFraction = 0.3
	cfg.Iterations = 200
	m, err := TrainSVMWithSGD(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(d, m.Predict); acc < 0.9 {
		t.Errorf("mini-batch accuracy = %.3f", acc)
	}
}

// dummyCoded builds a naive-Bayes-friendly dataset of one-hot features
// where class correlates with which block is hot.
func dummyCoded(n, parts int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{Parts: make([][]LabeledPoint, parts), NumFeatures: 4}
	for i := 0; i < n; i++ {
		label := float64(rng.Intn(2))
		f := make([]float64, 4)
		// Class 0 mostly lights features 0/1; class 1 features 2/3.
		base := 0
		if label == 1 {
			base = 2
		}
		if rng.Float64() < 0.9 {
			f[base+rng.Intn(2)] = 1
		} else {
			f[(base+2)%4+rng.Intn(2)] = 1
		}
		d.Parts[i%parts] = append(d.Parts[i%parts], LabeledPoint{Label: label, Features: f})
	}
	return d
}

func TestNaiveBayesOnDummyCodedFeatures(t *testing.T) {
	d := dummyCoded(3000, 4, 7)
	m, err := TrainNaiveBayes(d, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Labels) != 2 {
		t.Fatalf("labels = %v", m.Labels)
	}
	if acc := Accuracy(d, m.Predict); acc < 0.85 {
		t.Errorf("naive Bayes accuracy = %.3f", acc)
	}
}

func TestNaiveBayesValidation(t *testing.T) {
	neg := &Dataset{Parts: [][]LabeledPoint{{{Label: 0, Features: []float64{-1}}}}, NumFeatures: 1}
	if _, err := TrainNaiveBayes(neg, 1.0); err == nil {
		t.Error("negative features accepted")
	}
	d := dummyCoded(10, 2, 8)
	if _, err := TrainNaiveBayes(d, 0); err == nil {
		t.Error("zero lambda accepted")
	}
	if _, err := TrainNaiveBayes(&Dataset{NumFeatures: 1}, 1.0); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestDecisionTreeLearnsAxisAlignedConcept(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d := &Dataset{Parts: make([][]LabeledPoint, 4), NumFeatures: 2}
	for i := 0; i < 2000; i++ {
		x0, x1 := rng.Float64()*10, rng.Float64()*10
		label := 0.0
		if x0 > 5 && x1 > 3 {
			label = 1
		}
		d.Parts[i%4] = append(d.Parts[i%4], LabeledPoint{Label: label, Features: []float64{x0, x1}})
	}
	m, err := TrainDecisionTree(d, DefaultTree())
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(d, m.Predict); acc < 0.97 {
		t.Errorf("tree accuracy = %.3f", acc)
	}
	if m.Depth < 2 {
		t.Errorf("tree too shallow: depth %d", m.Depth)
	}
}

func TestDecisionTreeDepthLimit(t *testing.T) {
	d := syntheticBinary(500, 2, 10)
	m, err := TrainDecisionTree(d, TreeConfig{MaxDepth: 1, MaxBins: 16, MinGain: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if m.Depth > 1 {
		t.Errorf("depth %d exceeds limit 1", m.Depth)
	}
	// A depth-1 tree on this data is a single split: both children leaves.
	if !m.Root.IsLeaf() {
		if !m.Root.Left.IsLeaf() || !m.Root.Right.IsLeaf() {
			t.Error("children of depth-1 root must be leaves")
		}
	}
}

func TestDecisionTreeConstantFeatures(t *testing.T) {
	d := &Dataset{Parts: [][]LabeledPoint{{
		{Label: 0, Features: []float64{1, 1}},
		{Label: 1, Features: []float64{1, 1}},
		{Label: 1, Features: []float64{1, 1}},
	}}, NumFeatures: 2}
	m, err := TrainDecisionTree(d, DefaultTree())
	if err != nil {
		t.Fatal(err)
	}
	if !m.Root.IsLeaf() {
		t.Error("constant features must yield a leaf")
	}
	if m.Predict([]float64{1, 1}) != 1 {
		t.Error("leaf should predict the majority class")
	}
}

func TestKMeansFindsWellSeparatedClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := &Dataset{Parts: make([][]LabeledPoint, 3), NumFeatures: 2}
	centers := [][]float64{{0, 0}, {10, 10}, {-10, 10}}
	for i := 0; i < 900; i++ {
		c := centers[i%3]
		p := LabeledPoint{Features: []float64{c[0] + rng.NormFloat64()*0.5, c[1] + rng.NormFloat64()*0.5}}
		d.Parts[i%3] = append(d.Parts[i%3], p)
	}
	m, err := TrainKMeans(d, DefaultKMeans(3))
	if err != nil {
		t.Fatal(err)
	}
	// Every true center must be close to some learned center.
	for _, c := range centers {
		best := math.Inf(1)
		for _, lc := range m.Centers {
			if dd := sqDist(c, lc); dd < best {
				best = dd
			}
		}
		if best > 1 {
			t.Errorf("no learned center near %v (nearest sq dist %v)", c, best)
		}
	}
	if m.Cost > 900*1.0 {
		t.Errorf("cost = %v", m.Cost)
	}
}

func TestKMeansValidation(t *testing.T) {
	d := syntheticBinary(5, 1, 12)
	if _, err := TrainKMeans(d, DefaultKMeans(10)); err == nil {
		t.Error("k > n accepted")
	}
	if _, err := TrainKMeans(d, DefaultKMeans(0)); err == nil {
		t.Error("k = 0 accepted")
	}
}

func ingestSchema() row.Schema {
	return row.MustSchema(
		row.Column{Name: "age", Type: row.TypeInt},
		row.Column{Name: "amount", Type: row.TypeFloat},
		row.Column{Name: "abandoned", Type: row.TypeInt},
	)
}

func TestIngestFromSliceFormat(t *testing.T) {
	topo := cluster.NewTopology(4)
	rows := []row.Row{
		{row.Int(30), row.Float(100), row.Int(2)},
		{row.Int(40), row.Float(200), row.Int(1)},
		{row.Int(50), row.Float(300), row.Int(1)},
	}
	f := &hadoopfmt.SliceFormat{Rows: rows, RowSchema: ingestSchema()}
	d, err := Ingest(f, IngestOptions{
		LabelCol: "abandoned",
		// Map the recoded 1/2 labels to SVM's 1/0 (1 = abandoned).
		LabelTransform: func(v float64) float64 {
			if v == 1 {
				return 1
			}
			return 0
		},
		NumWorkers: 3,
		Nodes:      topo.Nodes(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumRows() != 3 || d.NumFeatures != 2 {
		t.Fatalf("rows=%d features=%d", d.NumRows(), d.NumFeatures)
	}
	all := d.All()
	if all[0].Label != 0 || all[1].Label != 1 {
		t.Errorf("label transform: %v", all)
	}
	if all[0].Features[0] != 30 || all[0].Features[1] != 100 {
		t.Errorf("features: %v", all[0])
	}
}

func TestIngestErrors(t *testing.T) {
	topo := cluster.NewTopology(2)
	stringSchema := row.MustSchema(
		row.Column{Name: "label", Type: row.TypeInt},
		row.Column{Name: "gender", Type: row.TypeString},
	)
	f := &hadoopfmt.SliceFormat{
		Rows:      []row.Row{{row.Int(1), row.String_("F")}},
		RowSchema: stringSchema,
	}
	if _, err := Ingest(f, IngestOptions{LabelCol: "label", Nodes: topo.Nodes()}); err == nil {
		t.Error("VARCHAR feature accepted — must demand recoding first")
	}
	if _, err := Ingest(f, IngestOptions{LabelCol: "nosuch", Nodes: topo.Nodes()}); err == nil {
		t.Error("unknown label accepted")
	}
	if _, err := Ingest(f, IngestOptions{LabelCol: "label"}); err == nil {
		t.Error("no nodes accepted")
	}
	if _, err := Ingest(f, IngestOptions{LabelCol: "label", FeatureCols: []string{"label"}, Nodes: topo.Nodes()}); err == nil {
		t.Error("label as feature accepted")
	}
	nullRows := &hadoopfmt.SliceFormat{
		Rows:      []row.Row{{row.NullOf(row.TypeInt), row.String_("F")}},
		RowSchema: stringSchema,
	}
	if _, err := Ingest(nullRows, IngestOptions{LabelCol: "label", FeatureCols: []string{"label"}, Nodes: topo.Nodes()}); err == nil {
		t.Error("degenerate options accepted")
	}
}

func TestIngestHonorsLocality(t *testing.T) {
	topo := cluster.NewTopology(3)
	rows := make([]row.Row, 9)
	for i := range rows {
		rows[i] = row.Row{row.Int(int64(i)), row.Float(1), row.Int(1)}
	}
	f := &hadoopfmt.SliceFormat{
		Rows:      rows,
		RowSchema: ingestSchema(),
		Hosts:     []string{topo.Node(2).Addr},
	}
	d, err := Ingest(f, IngestOptions{LabelCol: "abandoned", NumWorkers: 3, Nodes: topo.Nodes()})
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range d.Nodes {
		if n != topo.Node(2) {
			t.Errorf("split %d placed on %s, want local node %s", i, n.Name, topo.Node(2).Name)
		}
	}
}

func TestTrainNaiveBayesMRMatchesInMemory(t *testing.T) {
	topo := cluster.NewTopology(4)
	fs := newFS(topo)
	env := &MREnv{Topo: topo, FS: fs, TaskNodes: []int{0, 1, 2, 3}}

	// Build rows equivalent to a dummy-coded dataset.
	schema := row.MustSchema(
		row.Column{Name: "label", Type: row.TypeInt},
		row.Column{Name: "f0", Type: row.TypeFloat},
		row.Column{Name: "f1", Type: row.TypeFloat},
	)
	rng := rand.New(rand.NewSource(13))
	var rows []row.Row
	for i := 0; i < 400; i++ {
		label := rng.Intn(2)
		f0, f1 := 0.0, 0.0
		if (label == 0) == (rng.Float64() < 0.85) {
			f0 = 1
		} else {
			f1 = 1
		}
		rows = append(rows, row.Row{row.Int(int64(label)), row.Float(f0), row.Float(f1)})
	}
	f := &hadoopfmt.SliceFormat{Rows: rows, RowSchema: schema}
	opts := IngestOptions{LabelCol: "label", Nodes: topo.Nodes()}

	mr, err := TrainNaiveBayesMR(env, f, opts, 1.0, "/nb/model")
	if err != nil {
		t.Fatal(err)
	}
	d, err := Ingest(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	mem, err := TrainNaiveBayes(d, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(mr.Labels) != len(mem.Labels) {
		t.Fatalf("label counts differ: %v vs %v", mr.Labels, mem.Labels)
	}
	for c := range mr.Labels {
		if math.Abs(mr.Priors[c]-mem.Priors[c]) > 1e-9 {
			t.Errorf("prior[%d]: %v vs %v", c, mr.Priors[c], mem.Priors[c])
		}
		for j := range mr.Theta[c] {
			if math.Abs(mr.Theta[c][j]-mem.Theta[c][j]) > 1e-9 {
				t.Errorf("theta[%d][%d]: %v vs %v", c, j, mr.Theta[c][j], mem.Theta[c][j])
			}
		}
	}
}

func newFS(topo *cluster.Topology) *dfs.FileSystem {
	return dfs.New(topo, dfs.Config{BlockSize: 1024, Replication: 2})
}
