package ml

import (
	"fmt"
	"math"
)

// TreeConfig configures decision-tree training.
type TreeConfig struct {
	MaxDepth int
	// MaxBins is the number of candidate thresholds per feature (equal
	// width over the feature's observed range), the histogram trick MLlib
	// uses to keep split search distributed.
	MaxBins int
	// MinGain prunes splits whose Gini gain is below the threshold.
	MinGain float64
}

// DefaultTree returns MLlib-like defaults.
func DefaultTree() TreeConfig {
	return TreeConfig{MaxDepth: 5, MaxBins: 32, MinGain: 1e-9}
}

// TreeNode is one node of a trained decision tree.
type TreeNode struct {
	// Leaf prediction (majority class) when Left/Right are nil.
	Prediction float64
	// Internal split: go Left when Features[Feature] <= Threshold.
	Feature   int
	Threshold float64
	Left      *TreeNode
	Right     *TreeNode
}

// IsLeaf reports whether the node is terminal.
func (n *TreeNode) IsLeaf() bool { return n.Left == nil }

// DecisionTreeModel is a trained classification tree.
type DecisionTreeModel struct {
	Root   *TreeNode
	Depth  int
	Labels []float64
}

// Predict returns the class label for a feature vector.
func (m *DecisionTreeModel) Predict(x []float64) float64 {
	n := m.Root
	for !n.IsLeaf() {
		if x[n.Feature] <= n.Threshold {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n.Prediction
}

// TrainDecisionTree fits a Gini-impurity classification tree level by
// level: each level computes per-partition class histograms for every
// (open node, feature, bin) in parallel, merges them, and picks the best
// split per node — the distributed histogram strategy of MLlib's trees.
func TrainDecisionTree(d *Dataset, cfg TreeConfig) (*DecisionTreeModel, error) {
	if d.NumRows() == 0 {
		return nil, fmt.Errorf("ml: empty dataset")
	}
	if cfg.MaxDepth < 1 || cfg.MaxBins < 2 {
		return nil, fmt.Errorf("ml: need MaxDepth >= 1 and MaxBins >= 2")
	}
	dim := d.NumFeatures

	// Class index assignment (distributed label discovery).
	labelSets := make([]map[float64]bool, len(d.Parts))
	forEachPart(len(d.Parts), func(i int) error {
		s := make(map[float64]bool)
		for _, p := range d.Parts[i] {
			s[p.Label] = true
		}
		labelSets[i] = s
		return nil
	})
	labelIdx := make(map[float64]int)
	var labels []float64
	for _, s := range labelSets {
		for l := range s {
			if _, ok := labelIdx[l]; !ok {
				labelIdx[l] = 0
				labels = append(labels, l)
			}
		}
	}
	sortFloats(labels)
	for i, l := range labels {
		labelIdx[l] = i
	}
	numClasses := len(labels)

	// Candidate thresholds: equal-width bins over each feature's range.
	mins := make([]float64, dim)
	maxs := make([]float64, dim)
	for j := range mins {
		mins[j], maxs[j] = math.Inf(1), math.Inf(-1)
	}
	partMins := make([][]float64, len(d.Parts))
	partMaxs := make([][]float64, len(d.Parts))
	forEachPart(len(d.Parts), func(i int) error {
		mn := make([]float64, dim)
		mx := make([]float64, dim)
		for j := range mn {
			mn[j], mx[j] = math.Inf(1), math.Inf(-1)
		}
		for _, p := range d.Parts[i] {
			for j, x := range p.Features {
				if x < mn[j] {
					mn[j] = x
				}
				if x > mx[j] {
					mx[j] = x
				}
			}
		}
		partMins[i], partMaxs[i] = mn, mx
		return nil
	})
	for i := range d.Parts {
		for j := 0; j < dim; j++ {
			if partMins[i][j] < mins[j] {
				mins[j] = partMins[i][j]
			}
			if partMaxs[i][j] > maxs[j] {
				maxs[j] = partMaxs[i][j]
			}
		}
	}
	thresholds := make([][]float64, dim)
	for j := 0; j < dim; j++ {
		if !(maxs[j] > mins[j]) {
			continue // constant feature: no usable splits
		}
		width := (maxs[j] - mins[j]) / float64(cfg.MaxBins)
		for b := 1; b < cfg.MaxBins; b++ {
			thresholds[j] = append(thresholds[j], mins[j]+width*float64(b))
		}
	}

	// Level-by-level growth. nodeOf[i][k] tracks which open node row k of
	// partition i currently belongs to (-1 once settled in a leaf).
	root := &TreeNode{}
	open := []*TreeNode{root}
	assign := make([][]*TreeNode, len(d.Parts))
	forEachPart(len(d.Parts), func(i int) error {
		a := make([]*TreeNode, len(d.Parts[i]))
		for k := range a {
			a[k] = root
		}
		assign[i] = a
		return nil
	})

	depth := 0
	for len(open) > 0 && depth < cfg.MaxDepth {
		nodeIdx := make(map[*TreeNode]int, len(open))
		for i, n := range open {
			nodeIdx[n] = i
		}
		// hist[node][feature][bin][class] counts points with value <= the
		// bin's threshold; totals[node][class] counts all node points.
		type levelStats struct {
			hist   [][][]int64
			totals [][]int64
		}
		partStats := make([]*levelStats, len(d.Parts))
		forEachPart(len(d.Parts), func(i int) error {
			ls := &levelStats{
				hist:   make([][][]int64, len(open)),
				totals: make([][]int64, len(open)),
			}
			for n := range ls.hist {
				ls.hist[n] = make([][]int64, dim)
				for j := 0; j < dim; j++ {
					ls.hist[n][j] = make([]int64, len(thresholds[j])*numClasses)
				}
				ls.totals[n] = make([]int64, numClasses)
			}
			for k, p := range d.Parts[i] {
				node := assign[i][k]
				if node == nil {
					continue
				}
				ni, ok := nodeIdx[node]
				if !ok {
					continue
				}
				ci := labelIdx[p.Label]
				ls.totals[ni][ci]++
				for j, x := range p.Features {
					for b, thr := range thresholds[j] {
						if x <= thr {
							ls.hist[ni][j][b*numClasses+ci]++
						}
					}
				}
			}
			partStats[i] = ls
			return nil
		})
		// Merge partials.
		merged := partStats[0]
		for _, ls := range partStats[1:] {
			for n := range merged.hist {
				for j := range merged.hist[n] {
					for z := range merged.hist[n][j] {
						merged.hist[n][j][z] += ls.hist[n][j][z]
					}
				}
				for c := range merged.totals[n] {
					merged.totals[n][c] += ls.totals[n][c]
				}
			}
		}

		// Pick the best split per open node.
		var nextOpen []*TreeNode
		split := make(map[*TreeNode]bool, len(open))
		for ni, node := range open {
			totals := merged.totals[ni]
			var totalCount int64
			for _, c := range totals {
				totalCount += c
			}
			node.Prediction = majority(labels, totals)
			if totalCount == 0 {
				continue
			}
			parentGini := gini(totals, totalCount)
			bestGain, bestFeature, bestThr := cfg.MinGain, -1, 0.0
			left := make([]int64, numClasses)
			right := make([]int64, numClasses)
			for j := 0; j < dim; j++ {
				for b, thr := range thresholds[j] {
					var lc, rc int64
					for c := 0; c < numClasses; c++ {
						l := merged.hist[ni][j][b*numClasses+c]
						left[c] = l
						right[c] = totals[c] - l
						lc += l
						rc += totals[c] - l
					}
					if lc == 0 || rc == 0 {
						continue
					}
					gain := parentGini -
						(float64(lc)/float64(totalCount))*gini(left, lc) -
						(float64(rc)/float64(totalCount))*gini(right, rc)
					if gain > bestGain {
						bestGain, bestFeature, bestThr = gain, j, thr
					}
				}
			}
			if bestFeature < 0 {
				continue
			}
			node.Feature = bestFeature
			node.Threshold = bestThr
			node.Left = &TreeNode{}
			node.Right = &TreeNode{}
			split[node] = true
			nextOpen = append(nextOpen, node.Left, node.Right)
		}

		// Route points into the children.
		forEachPart(len(d.Parts), func(i int) error {
			for k, p := range d.Parts[i] {
				node := assign[i][k]
				if node == nil || !split[node] {
					if node != nil && node.IsLeaf() {
						assign[i][k] = nil
					}
					continue
				}
				if p.Features[node.Feature] <= node.Threshold {
					assign[i][k] = node.Left
				} else {
					assign[i][k] = node.Right
				}
			}
			return nil
		})
		open = nextOpen
		depth++
	}

	// Finalize any still-open nodes as leaves with majority predictions.
	if len(open) > 0 {
		nodeIdx := make(map[*TreeNode]int, len(open))
		for i, n := range open {
			nodeIdx[n] = i
		}
		totals := make([][]int64, len(open))
		for i := range totals {
			totals[i] = make([]int64, numClasses)
		}
		for i := range d.Parts {
			for k, p := range d.Parts[i] {
				if node := assign[i][k]; node != nil {
					if ni, ok := nodeIdx[node]; ok {
						totals[ni][labelIdx[p.Label]]++
					}
				}
			}
		}
		for i, n := range open {
			n.Prediction = majority(labels, totals[i])
		}
	}
	return &DecisionTreeModel{Root: root, Depth: depth, Labels: labels}, nil
}

func gini(counts []int64, total int64) float64 {
	g := 1.0
	for _, c := range counts {
		p := float64(c) / float64(total)
		g -= p * p
	}
	return g
}

func majority(labels []float64, counts []int64) float64 {
	best, bestC := 0, int64(-1)
	for i, c := range counts {
		if c > bestC {
			best, bestC = i, c
		}
	}
	if len(labels) == 0 {
		return 0
	}
	return labels[best]
}

func sortFloats(a []float64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
