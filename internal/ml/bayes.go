package ml

import (
	"fmt"
	"math"
	"sort"
)

// NaiveBayesModel is a multinomial naive Bayes classifier: the model family
// Mahout and MLlib ship for count-like (e.g. dummy-coded) features.
type NaiveBayesModel struct {
	// Labels holds the class labels in sorted order.
	Labels []float64
	// Priors[c] is log P(class c).
	Priors []float64
	// Theta[c][j] is log P(feature j | class c).
	Theta [][]float64
}

// TrainNaiveBayes fits a multinomial naive Bayes model with Laplace
// smoothing lambda. Features must be non-negative. Per-class sums are
// computed per partition in parallel and merged — one distributed pass.
func TrainNaiveBayes(d *Dataset, lambda float64) (*NaiveBayesModel, error) {
	if d.NumRows() == 0 {
		return nil, fmt.Errorf("ml: empty dataset")
	}
	if lambda <= 0 {
		return nil, fmt.Errorf("ml: smoothing lambda must be positive")
	}
	dim := d.NumFeatures

	type classStats struct {
		count int64
		sums  []float64
	}
	partials := make([]map[float64]*classStats, len(d.Parts))
	if err := forEachPart(len(d.Parts), func(i int) error {
		m := make(map[float64]*classStats)
		for _, p := range d.Parts[i] {
			cs := m[p.Label]
			if cs == nil {
				cs = &classStats{sums: make([]float64, dim)}
				m[p.Label] = cs
			}
			cs.count++
			for j, x := range p.Features {
				if x < 0 {
					return fmt.Errorf("ml: multinomial naive Bayes requires non-negative features, found %v", x)
				}
				cs.sums[j] += x
			}
		}
		partials[i] = m
		return nil
	}); err != nil {
		return nil, err
	}

	merged := make(map[float64]*classStats)
	for _, m := range partials {
		for label, cs := range m {
			mc := merged[label]
			if mc == nil {
				mc = &classStats{sums: make([]float64, dim)}
				merged[label] = mc
			}
			mc.count += cs.count
			for j, s := range cs.sums {
				mc.sums[j] += s
			}
		}
	}

	labels := make([]float64, 0, len(merged))
	for l := range merged {
		labels = append(labels, l)
	}
	sort.Float64s(labels)

	model := &NaiveBayesModel{Labels: labels}
	total := float64(d.NumRows())
	for _, l := range labels {
		cs := merged[l]
		model.Priors = append(model.Priors, math.Log(float64(cs.count)/total))
		rowSum := 0.0
		for _, s := range cs.sums {
			rowSum += s
		}
		theta := make([]float64, dim)
		denom := math.Log(rowSum + lambda*float64(dim))
		for j, s := range cs.sums {
			theta[j] = math.Log(s+lambda) - denom
		}
		model.Theta = append(model.Theta, theta)
	}
	return model, nil
}

// Predict returns the most likely class label.
func (m *NaiveBayesModel) Predict(x []float64) float64 {
	best, bestScore := 0, math.Inf(-1)
	for c := range m.Labels {
		score := m.Priors[c]
		for j, v := range x {
			score += v * m.Theta[c][j]
		}
		if score > bestScore {
			best, bestScore = c, score
		}
	}
	return m.Labels[best]
}
