package ml

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"sqlml/internal/cluster"
	"sqlml/internal/dfs"
	"sqlml/internal/hadoopfmt"
	"sqlml/internal/mapred"
	"sqlml/internal/row"
)

// MREnv is the cluster environment a MapReduce-trained model runs on.
type MREnv struct {
	Topo      *cluster.Topology
	FS        *dfs.FileSystem
	Cost      *cluster.CostModel
	TaskNodes []int
}

// TrainNaiveBayesMR trains multinomial naive Bayes as a MapReduce job —
// the repository's Mahout analog. It consumes ANY InputFormat (a DFS table
// or the parallel streaming transfer alike), which is exactly the paper's
// genericity claim: an ML system whose only coupling to the SQL side is
// the InputFormat seam.
//
// The job emits one record per (class) key from each mapper with partial
// counts and feature sums; reducers merge them; the model is assembled
// from the job output (materialised under workPath on the DFS).
func TrainNaiveBayesMR(env *MREnv, input hadoopfmt.InputFormat, opts IngestOptions, lambda float64, workPath string) (*NaiveBayesModel, error) {
	if env == nil || env.FS == nil || env.Topo == nil {
		return nil, fmt.Errorf("ml: incomplete MapReduce environment")
	}
	if lambda <= 0 {
		return nil, fmt.Errorf("ml: smoothing lambda must be positive")
	}
	schema, err := input.Schema()
	if err != nil {
		return nil, err
	}
	conv, err := newConverter(schema, opts)
	if err != nil {
		return nil, err
	}
	dim := conv.numFeatures

	// Output schema: label, count, then one sum column per feature.
	cols := []row.Column{
		{Name: "label", Type: row.TypeFloat},
		{Name: "count", Type: row.TypeInt},
	}
	for j := 0; j < dim; j++ {
		cols = append(cols, row.Column{Name: "s" + strconv.Itoa(j), Type: row.TypeFloat})
	}
	outSchema, err := row.NewSchema(cols...)
	if err != nil {
		return nil, err
	}

	job := &mapred.Job{
		Name:  "naive-bayes-train",
		Input: input,
		Mapper: mapred.MapperFunc(func(r row.Row, emit func(string, row.Row) error) error {
			p, err := conv.convert(r)
			if err != nil {
				return err
			}
			out := make(row.Row, 0, dim+2)
			out = append(out, row.Float(p.Label), row.Int(1))
			for _, x := range p.Features {
				if x < 0 {
					return fmt.Errorf("ml: multinomial naive Bayes requires non-negative features, found %v", x)
				}
				out = append(out, row.Float(x))
			}
			return emit(strconv.FormatFloat(p.Label, 'g', -1, 64), out)
		}),
		Reducer: mapred.ReducerFunc(func(key string, values []row.Row, emit func(row.Row) error) error {
			var count int64
			sums := make([]float64, dim)
			label := values[0][0]
			for _, v := range values {
				count += v[1].AsInt()
				for j := 0; j < dim; j++ {
					sums[j] += v[2+j].AsFloat()
				}
			}
			out := make(row.Row, 0, dim+2)
			out = append(out, label, row.Int(count))
			for _, s := range sums {
				out = append(out, row.Float(s))
			}
			return emit(out)
		}),
		NumReducers:  len(env.TaskNodes),
		OutputPath:   workPath,
		OutputSchema: outSchema,
		Topo:         env.Topo,
		FS:           env.FS,
		Cost:         env.Cost,
		TaskNodes:    env.TaskNodes,
	}
	if _, err := mapred.Run(job); err != nil {
		return nil, err
	}

	stats, err := hadoopfmt.ReadAll(mapred.Output(job), env.Topo.Node(env.TaskNodes[0]))
	if err != nil {
		return nil, err
	}
	if len(stats) == 0 {
		return nil, fmt.Errorf("ml: naive Bayes job produced no class statistics")
	}
	sort.Slice(stats, func(i, j int) bool { return stats[i][0].AsFloat() < stats[j][0].AsFloat() })
	var total int64
	for _, s := range stats {
		total += s[1].AsInt()
	}
	model := &NaiveBayesModel{}
	for _, s := range stats {
		model.Labels = append(model.Labels, s[0].AsFloat())
		model.Priors = append(model.Priors, math.Log(float64(s[1].AsInt())/float64(total)))
		rowSum := 0.0
		for j := 0; j < dim; j++ {
			rowSum += s[2+j].AsFloat()
		}
		theta := make([]float64, dim)
		denom := math.Log(rowSum + lambda*float64(dim))
		for j := 0; j < dim; j++ {
			theta[j] = math.Log(s[2+j].AsFloat()+lambda) - denom
		}
		model.Theta = append(model.Theta, theta)
	}
	return model, nil
}
