// Package experiments regenerates the paper's evaluation (§7): Figure 3
// (three approaches of connecting big SQL with big ML, with per-stage
// breakdown) and Figure 4 (the effect of caching), plus the ablations
// DESIGN.md calls out. It is shared by cmd/bench and the root bench_test.go
// so the printed tables and the testing.B benchmarks agree.
package experiments

import (
	"fmt"
	"time"

	"sqlml/internal/cluster"
	"sqlml/internal/core"
	"sqlml/internal/datagen"
	"sqlml/internal/ml"
	"sqlml/internal/stream"
	"sqlml/internal/transform"
)

// PaperQuery is the §1 example preparation query.
const PaperQuery = `
	SELECT U.age, U.gender, C.amount, C.abandoned
	FROM carts C, users U
	WHERE C.userid=U.userid AND U.country='USA'`

// PaperSpec is the §7 transformation: recode gender and abandoned, dummy
// code gender.
func PaperSpec() transform.Spec {
	return transform.Spec{
		RecodeCols: []string{"gender", "abandoned"},
		CodeCols:   []string{"gender"},
		Coding:     transform.CodingDummy,
	}
}

// Scale sizes an experiment run.
type Scale struct {
	Users        int
	CartsPerUser int
	Seed         int64
}

// SmallScale keeps a full figure regeneration under a second of wall time.
func SmallScale() Scale { return Scale{Users: 300, CartsPerUser: 20, Seed: 7} }

// DefaultScale is the benchmark default: ~100k carts, the paper's 100:1
// carts:users ratio at 1:10000 of the paper's table sizes.
func DefaultScale() Scale { return Scale{Users: 1000, CartsPerUser: 100, Seed: 7} }

// CalibratedCost returns the simulated cost model used by all experiments,
// loosely calibrated to the paper's testbed: 12 SATA disks per node behind
// a 10 GbE network, row processing at a few hundred MB/s per node, and
// TimeScale 0 (costs accumulate but nothing sleeps, so benchmarks measure
// the simulated time, not wall time).
func CalibratedCost() *cluster.CostModel {
	return &cluster.CostModel{
		DiskReadBps:  400e6,
		DiskWriteBps: 300e6,
		NetBps:       1.25e9,
		ProcBps:      400e6,
		TimeScale:    0,
	}
}

// MRStartupDelay approximates Hadoop job scheduling/JVM startup overhead,
// scaled to the workload so ratios are stable across Scale values; the
// naive pipeline pays it twice (one per Jaql MapReduce job). The 2.2x
// factor is the calibration knob that reproduces the paper's observed
// naive/insql gap (about 1.7x end to end): on the paper's testbed a
// Hadoop job's fixed overhead was of the same order as one scan of the
// carts table.
func MRStartupDelay(s Scale) time.Duration {
	bytesPerCart := 45.0
	pass := bytesPerCart * float64(s.Users*s.CartsPerUser) / 400e6
	return time.Duration(2.2 * pass * float64(time.Second))
}

// Setup builds a deployment with the §7 warehouse loaded as external text
// tables on the DFS. Callers own env.Close.
func Setup(s Scale, senderCfg stream.SenderConfig) (*core.Env, error) {
	cfg := core.DefaultEnvConfig()
	cfg.Cost = CalibratedCost()
	cfg.BlockSize = 64 << 10
	cfg.SenderConfig = senderCfg
	cfg.MRStartupDelay = MRStartupDelay(s)
	env, err := core.NewEnv(cfg)
	if err != nil {
		return nil, err
	}
	d, err := datagen.Generate(datagen.Config{Users: s.Users, CartsPerUser: s.CartsPerUser, Seed: s.Seed})
	if err != nil {
		env.Close()
		return nil, err
	}
	usersPath, cartsPath, err := datagen.WriteToDFS(d, env.FS, "/warehouse", env.Topo.Node(1))
	if err != nil {
		env.Close()
		return nil, err
	}
	if err := env.Engine.RegisterExternalTable("users", env.FS, usersPath, datagen.UsersSchema()); err != nil {
		env.Close()
		return nil, err
	}
	if err := env.Engine.RegisterExternalTable("carts", env.FS, cartsPath, datagen.CartsSchema()); err != nil {
		env.Close()
		return nil, err
	}
	// The warehouse load is setup, not measured.
	env.Cost.ResetStats()
	return env, nil
}

// PaperPipeline is the §7 pipeline configuration.
func PaperPipeline() core.PipelineConfig {
	return core.PipelineConfig{
		Query:          PaperQuery,
		Spec:           PaperSpec(),
		LabelCol:       "abandoned",
		LabelTransform: func(v float64) float64 { return v - 1 },
		K:              2,
	}
}

// StageTime is one (stage, simulated duration) pair of a run's breakdown.
type StageTime struct {
	Stage string
	Sim   time.Duration
}

// Figure3Row is one bar of Figure 3.
type Figure3Row struct {
	Approach string
	Stages   []StageTime
	TotalSim time.Duration
	Wall     time.Duration
	Rows     int
}

// Figure3 runs the three approaches on one deployment and reports the
// per-stage simulated breakdown, regenerating the paper's Figure 3.
func Figure3(env *core.Env) ([]Figure3Row, error) {
	cfg := PaperPipeline()
	var rows []Figure3Row
	for _, a := range []core.Approach{core.Naive, core.InSQL, core.InSQLStream} {
		env.Cost.ResetStats()
		var stages []StageTime
		last := time.Duration(0)
		cfg.OnStage = func(stage string) {
			now := env.Cost.Stats().SimulatedTime
			stages = append(stages, StageTime{Stage: stage, Sim: now - last})
			last = now
		}
		start := time.Now()
		res, err := core.Run(env, a, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", a, err)
		}
		rows = append(rows, Figure3Row{
			Approach: a.String(),
			Stages:   stages,
			TotalSim: env.Cost.Stats().SimulatedTime,
			Wall:     time.Since(start),
			Rows:     res.Rows,
		})
	}
	return rows, nil
}

// Figure4Row is one bar of Figure 4.
type Figure4Row struct {
	Tier     string
	Hit      string
	TotalSim time.Duration
	Wall     time.Duration
}

// Figure4 primes the cache with one insql+stream run and then measures the
// three caching tiers, regenerating the paper's Figure 4. onDFS selects the
// paper's "actual HDFS table" materialisation (cache-served runs re-scan
// the DFS) instead of the in-memory materialized view.
func Figure4(env *core.Env, onDFS bool) ([]Figure4Row, error) {
	cfg := PaperPipeline()
	cfg.CachePopulate = true
	cfg.CacheOnDFS = onDFS
	if _, err := core.Run(env, core.InSQLStream, cfg); err != nil {
		return nil, fmt.Errorf("experiments: cache priming: %w", err)
	}
	cfg.CachePopulate = false
	var rows []Figure4Row
	for _, tier := range []core.CacheTier{core.CacheOff, core.CacheRecodeMaps, core.CacheFullResult} {
		cfg.Tier = tier
		env.Cost.ResetStats()
		start := time.Now()
		res, err := core.Run(env, core.InSQLStream, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", tier, err)
		}
		rows = append(rows, Figure4Row{
			Tier:     tier.String(),
			Hit:      res.CacheHit.String(),
			TotalSim: env.Cost.Stats().SimulatedTime,
			Wall:     time.Since(start),
		})
	}
	return rows, nil
}

// SVMReport reproduces the §7 side note ("reading the transformed data
// from HDFS and running the SVMWithSGD for 10 iterations took 774
// seconds"): one insql run, then SVM training for the given iterations.
type SVMReport struct {
	IngestSim time.Duration
	TrainWall time.Duration
	Accuracy  float64
}

// SVMTraining measures ingestion plus SVM training on the paper pipeline.
func SVMTraining(env *core.Env, iterations int) (*SVMReport, error) {
	env.Cost.ResetStats()
	res, err := core.Run(env, core.InSQL, PaperPipeline())
	if err != nil {
		return nil, err
	}
	ingestSim := env.Cost.Stats().SimulatedTime
	sgd := ml.DefaultSGD()
	sgd.Iterations = iterations
	start := time.Now()
	model, err := ml.TrainSVMWithSGD(res.Dataset, sgd)
	if err != nil {
		return nil, err
	}
	return &SVMReport{
		IngestSim: ingestSim,
		TrainWall: time.Since(start),
		Accuracy:  ml.Accuracy(res.Dataset, model.Predict),
	}, nil
}
