package experiments

import (
	"testing"
	"time"

	"sqlml/internal/stream"
)

// TestFigure3ShapeAtSmallScale is the harness's own regression test: the
// orderings the paper reports must hold at any scale the benchmarks might
// be run at, not just the default.
func TestFigure3ShapeAtSmallScale(t *testing.T) {
	env, err := Setup(SmallScale(), stream.DefaultSenderConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	rows, err := Figure3(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	naive, insql, stream := rows[0], rows[1], rows[2]
	if naive.Approach != "naive" || insql.Approach != "insql" || stream.Approach != "insql+stream" {
		t.Fatalf("approach order: %v %v %v", naive.Approach, insql.Approach, stream.Approach)
	}
	if !(naive.TotalSim > insql.TotalSim && insql.TotalSim > stream.TotalSim) {
		t.Errorf("ordering violated: %v > %v > %v expected",
			naive.TotalSim, insql.TotalSim, stream.TotalSim)
	}
	ratio := float64(naive.TotalSim) / float64(insql.TotalSim)
	if ratio < 1.3 || ratio > 2.2 {
		t.Errorf("naive/insql = %.2f, want near the paper's 1.7", ratio)
	}
	// All three consumed the same workload.
	if naive.Rows != insql.Rows || insql.Rows != stream.Rows || naive.Rows == 0 {
		t.Errorf("row counts differ: %d %d %d", naive.Rows, insql.Rows, stream.Rows)
	}
	// The per-stage breakdown accounts for (approximately) the total.
	var sum time.Duration
	for _, s := range naive.Stages {
		sum += s.Sim
	}
	if sum <= 0 || sum > naive.TotalSim {
		t.Errorf("naive stage sum %v vs total %v", sum, naive.TotalSim)
	}
}

func TestFigure4ShapeAtSmallScale(t *testing.T) {
	for _, onDFS := range []bool{false, true} {
		env, err := Setup(SmallScale(), stream.DefaultSenderConfig())
		if err != nil {
			t.Fatal(err)
		}
		rows, err := Figure4(env, onDFS)
		env.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 3 {
			t.Fatalf("rows = %d", len(rows))
		}
		none, maps, full := rows[0], rows[1], rows[2]
		if none.Hit != "miss" || maps.Hit != "recode-map" || full.Hit != "full-result" {
			t.Fatalf("onDFS=%v hits: %s %s %s", onDFS, none.Hit, maps.Hit, full.Hit)
		}
		if !(none.TotalSim > maps.TotalSim && maps.TotalSim > full.TotalSim) {
			t.Errorf("onDFS=%v ordering violated: %v > %v > %v expected",
				onDFS, none.TotalSim, maps.TotalSim, full.TotalSim)
		}
	}
}

func TestSVMTrainingReport(t *testing.T) {
	env, err := Setup(SmallScale(), stream.DefaultSenderConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	rep, err := SVMTraining(env, 10)
	if err != nil {
		t.Fatal(err)
	}
	if rep.IngestSim <= 0 || rep.TrainWall <= 0 {
		t.Errorf("report = %+v", rep)
	}
	if rep.Accuracy < 0.5 {
		t.Errorf("SVM below coin-flip: %.3f", rep.Accuracy)
	}
}

func TestRunTransferExactlyOnceGuard(t *testing.T) {
	cfg := DefaultTransfer()
	cfg.Workers = 2
	cfg.RowsPerWork = 300
	rep, err := RunTransfer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rows != 600 {
		t.Errorf("rows = %d", rep.Rows)
	}
	if rep.Restarts != 0 {
		t.Errorf("unexpected restarts: %d", rep.Restarts)
	}
}

func TestRecodeAblationBothPathsRun(t *testing.T) {
	env, err := Setup(SmallScale(), stream.DefaultSenderConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	joinSim, mapSim, err := RecodeAblation(env)
	if err != nil {
		t.Fatal(err)
	}
	if joinSim <= 0 || mapSim <= 0 {
		t.Errorf("ablation sims: join=%v mapside=%v", joinSim, mapSim)
	}
}

func TestMRStartupDelayScalesWithWorkload(t *testing.T) {
	small := MRStartupDelay(Scale{Users: 100, CartsPerUser: 10})
	big := MRStartupDelay(Scale{Users: 1000, CartsPerUser: 100})
	if big <= small {
		t.Errorf("startup delay should scale: %v vs %v", small, big)
	}
}
