package experiments

import (
	"fmt"
	"sync"
	"time"

	"sqlml/internal/cluster"
	"sqlml/internal/core"
	"sqlml/internal/ml"
	"sqlml/internal/row"
	"sqlml/internal/stream"
	"sqlml/internal/transform"
)

// TransferConfig parameterises one isolated streaming-transfer experiment
// (the §3 design-choice ablations: split factor k, buffer size, locality,
// slow-consumer spilling, failure recovery).
type TransferConfig struct {
	Workers     int
	K           int
	RowsPerWork int
	BufferSize  int
	QueueFrames int
	// BlockRows caps rows per wire block (0 means the sender default);
	// Proto pins the wire-format version (0 means latest) — together the
	// block-framing ablation knobs. DisableCompression turns off v3's
	// per-column encodings (columnar frames, raw vectors), isolating the
	// compression axis of the v2-vs-v3 grid.
	BlockRows          int
	Proto              int
	DisableCompression bool
	ConsumeDelay       time.Duration
	// Colocate places ML workers on the SQL workers' nodes (the
	// coordinator's locality hint honoured); otherwise they all land on a
	// remote node and every byte crosses the simulated network.
	Colocate bool
	// FailSplit / FailAfterRows inject one ML worker crash mid-transfer.
	FailSplit     int
	FailAfterRows int
}

// DefaultTransfer mirrors the paper's settings (4 KB buffers).
func DefaultTransfer() TransferConfig {
	return TransferConfig{
		Workers:     4,
		K:           1,
		RowsPerWork: 2000,
		BufferSize:  4 << 10,
		QueueFrames: 64,
		Colocate:    true,
		FailSplit:   -1,
	}
}

// TransferReport summarises one transfer experiment.
type TransferReport struct {
	Rows         int
	FramesSent   int64
	SimTime      time.Duration
	NetBytes     int64
	SpilledBytes int64
	Restarts     int
	// RawBytes/WireBytes mirror SenderStats: the v2-equivalent size of the
	// delivered rows vs the bytes actually framed — the compression ratio.
	RawBytes  int64
	WireBytes int64
	Wall      time.Duration
}

// transferSchema carries one id and one value column.
func transferSchema() row.Schema {
	return row.MustSchema(
		row.Column{Name: "id", Type: row.TypeInt},
		row.Column{Name: "x", Type: row.TypeFloat},
		row.Column{Name: "label", Type: row.TypeInt},
	)
}

// RunTransfer executes one coordinator-mediated transfer with the given
// knobs and verifies exactly-once delivery.
func RunTransfer(cfg TransferConfig) (*TransferReport, error) {
	topo := cluster.NewTopology(cfg.Workers + 1)
	cost := CalibratedCost()
	coord := stream.NewCoordinator(nil)
	addr, err := coord.Start("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer coord.Stop()

	mlNodes := make([]*cluster.Node, 0, cfg.Workers)
	if cfg.Colocate {
		for w := 0; w < cfg.Workers; w++ {
			mlNodes = append(mlNodes, topo.Node(w+1))
		}
	} else {
		mlNodes = append(mlNodes, topo.Node(0)) // anti-located
	}

	var failOnce sync.Once
	inFmt := &stream.InputFormat{
		CoordAddr:         addr,
		Job:               fmt.Sprintf("ablation-%d", time.Now().UnixNano()),
		ReceiveBufferSize: cfg.BufferSize,
		ConsumeDelay:      cfg.ConsumeDelay,
	}
	if cfg.FailSplit >= 0 {
		inFmt.Inject = func(split, rowsRead int) bool {
			fired := false
			if split == cfg.FailSplit && rowsRead == cfg.FailAfterRows {
				failOnce.Do(func() { fired = true })
			}
			return fired
		}
	}

	type ingestResult struct {
		d   *ml.Dataset
		err error
	}
	done := make(chan ingestResult, 1)
	go func() {
		d, err := ml.Ingest(inFmt, ml.IngestOptions{LabelCol: "label", Nodes: mlNodes, Cost: cost})
		done <- ingestResult{d, err}
	}()

	senderCfg := stream.DefaultSenderConfig()
	senderCfg.BufferSize = cfg.BufferSize
	senderCfg.QueueFrames = cfg.QueueFrames
	senderCfg.BlockRows = cfg.BlockRows
	senderCfg.Proto = cfg.Proto
	senderCfg.DisableCompression = cfg.DisableCompression
	senderCfg.MaxRestarts = 8
	if cfg.ConsumeDelay > 0 {
		// The spill ablation wants the producer to give up quickly.
		senderCfg.SpillWait = cfg.ConsumeDelay / 2
	}

	start := time.Now()
	stats := make([]*stream.SenderStats, cfg.Workers)
	errs := make([]error, cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rows := make([]row.Row, cfg.RowsPerWork)
			for i := range rows {
				rows[i] = row.Row{
					row.Int(int64(w*10_000_000 + i)),
					row.Float(float64(i)),
					row.Int(int64(i % 2)),
				}
			}
			stats[w], errs[w] = stream.Send(stream.SendRequest{
				CoordAddr:  addr,
				Job:        inFmt.Job,
				Command:    "bench",
				Worker:     w,
				NumWorkers: cfg.Workers,
				K:          cfg.K,
				Node:       topo.Node(w + 1),
				Topo:       topo,
				Cost:       cost,
				Schema:     transferSchema(),
				Rows:       rows,
				Config:     senderCfg,
			})
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	res := <-done
	if res.err != nil {
		return nil, res.err
	}
	want := cfg.Workers * cfg.RowsPerWork
	if res.d.NumRows() != want {
		return nil, fmt.Errorf("experiments: delivered %d rows, want %d", res.d.NumRows(), want)
	}
	report := &TransferReport{
		Rows:     res.d.NumRows(),
		SimTime:  cost.Stats().SimulatedTime,
		NetBytes: cost.Stats().NetBytes,
		Wall:     time.Since(start),
	}
	for _, s := range stats {
		report.FramesSent += s.FramesSent
		report.SpilledBytes += s.SpilledBytes
		report.Restarts += s.Restarts
		report.RawBytes += s.RawBytes
		report.WireBytes += s.WireBytes
	}
	return report, nil
}

// MessageLogTransfer runs the §8 future-work alternative: the same rows
// flow through a Kafka-style message log instead of direct sockets.
func MessageLogTransfer(workers, rowsPerWorker int) (*TransferReport, error) {
	topo := cluster.NewTopology(workers + 1)
	cost := CalibratedCost()
	log := stream.NewMessageLog()
	if err := log.CreateTopic("t", workers, transferSchema()); err != nil {
		return nil, err
	}
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rowsPerWorker; i++ {
				r := row.Row{row.Int(int64(w*10_000_000 + i)), row.Float(float64(i)), row.Int(int64(i % 2))}
				if err := log.Append("t", w, r); err != nil {
					errs[w] = err
					return
				}
			}
			errs[w] = log.Seal("t", w)
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	d, err := ml.Ingest(&stream.LogFormat{Log: log, Topic: "t"}, ml.IngestOptions{
		LabelCol: "label",
		Nodes:    topo.Nodes(),
		Cost:     cost,
	})
	if err != nil {
		return nil, err
	}
	if d.NumRows() != workers*rowsPerWorker {
		return nil, fmt.Errorf("experiments: log delivered %d rows", d.NumRows())
	}
	return &TransferReport{
		Rows:     d.NumRows(),
		SimTime:  cost.Stats().SimulatedTime,
		NetBytes: cost.Stats().NetBytes,
		Wall:     time.Since(start),
	}, nil
}

// RecodeAblation compares the paper's join-based recode (phase 2) against
// the map-side recode_apply UDF on the same prepared table, returning the
// simulated time of each.
func RecodeAblation(env *core.Env) (joinSim, mapSideSim time.Duration, err error) {
	prep, err := env.Engine.Query(PaperQuery)
	if err != nil {
		return 0, 0, err
	}
	if err := env.Engine.RegisterResult("__ablate_prep", prep); err != nil {
		return 0, 0, err
	}
	defer env.Engine.DropTable("__ablate_prep")
	_, mapTable, err := transform.BuildRecodeMap(env.Engine, "__ablate_prep", []string{"gender", "abandoned"})
	if err != nil {
		return 0, 0, err
	}
	defer env.Engine.DropTable(mapTable)

	// Recode results are streaming pipelines; drain them so the simulated
	// cost of actually executing each path is charged.
	env.Cost.ResetStats()
	joined, err := transform.Recode(env.Engine, "__ablate_prep", mapTable, []string{"gender", "abandoned"})
	if err != nil {
		return 0, 0, err
	}
	if err := joined.Materialize(); err != nil {
		return 0, 0, err
	}
	joinSim = env.Cost.Stats().SimulatedTime

	env.Cost.ResetStats()
	mapped, err := transform.RecodeMapSide(env.Engine, "__ablate_prep", mapTable, []string{"gender", "abandoned"})
	if err != nil {
		return 0, 0, err
	}
	if err := mapped.Materialize(); err != nil {
		return 0, 0, err
	}
	mapSideSim = env.Cost.Stats().SimulatedTime
	return joinSim, mapSideSim, nil
}
