// Package cluster models the simulated cluster the experiments run on: a set
// of named nodes with addresses, plus a cost model that charges (scaled)
// time for disk and network traffic.
//
// The paper's testbed is a 5-server cluster with 12 SATA disks and a 10 GbE
// NIC per node. This repository runs everything in one process, so the cost
// model is what preserves the *shape* of the results: materialising data to
// the DFS pays disk+replication costs, remote streaming pays network costs,
// and node-local streaming is free — exactly the trade-offs §3 and §7 of the
// paper measure.
package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Node is one simulated server.
type Node struct {
	ID   int
	Name string
	// Addr is the node's simulated IP address. Locality comparisons
	// throughout the repository (InputSplit locations, stream matchmaking)
	// are done on this address, mirroring the paper's use of SQL-worker IPs
	// as split locations.
	Addr string

	diskMu   sync.Mutex
	diskFree time.Time // when the simulated disk is next idle
	nicMu    sync.Mutex
	nicFree  time.Time
	cpuMu    sync.Mutex
	cpuFree  time.Time
}

// Topology is an immutable set of nodes.
type Topology struct {
	nodes []*Node
}

// NewTopology creates n simulated nodes named node0..node{n-1} with
// addresses 10.0.0.1..10.0.0.n.
func NewTopology(n int) *Topology {
	if n <= 0 {
		panic("cluster: topology needs at least one node")
	}
	t := &Topology{nodes: make([]*Node, n)}
	for i := 0; i < n; i++ {
		t.nodes[i] = &Node{
			ID:   i,
			Name: fmt.Sprintf("node%d", i),
			Addr: fmt.Sprintf("10.0.0.%d", i+1),
		}
	}
	return t
}

// Len returns the number of nodes.
func (t *Topology) Len() int { return len(t.nodes) }

// Nodes returns all nodes in ID order. Callers must not mutate the slice.
func (t *Topology) Nodes() []*Node { return t.nodes }

// Node returns the node with the given ID.
func (t *Topology) Node(id int) *Node {
	if id < 0 || id >= len(t.nodes) {
		panic(fmt.Sprintf("cluster: node %d out of range [0,%d)", id, len(t.nodes)))
	}
	return t.nodes[id]
}

// ByAddr returns the node with the given simulated address, or nil.
func (t *Topology) ByAddr(addr string) *Node {
	for _, n := range t.nodes {
		if n.Addr == addr {
			return n
		}
	}
	return nil
}

// CostModel charges simulated time for disk and network operations.
//
// Durations are computed from the simulated rates below and then multiplied
// by TimeScale before the caller actually sleeps, so benchmarks can replay
// cluster-scale behaviour in milliseconds while keeping ratios intact.
// Charges on the same node's disk (or NIC) serialize, modelling device
// contention between concurrent workers.
type CostModel struct {
	DiskReadBps  float64 // simulated disk read bandwidth, bytes/second
	DiskWriteBps float64 // simulated disk write bandwidth, bytes/second
	NetBps       float64 // simulated NIC bandwidth, bytes/second
	NetLatency   time.Duration
	// ProcBps is the simulated row-processing throughput per node. The
	// paper's caching gains are measured in saved *passes over the data*
	// (e.g. the recode-map cache avoids one of recoding's two passes), so
	// engines charge this for every pass: table-UDF inputs, join probes,
	// and MapReduce task inputs.
	ProcBps   float64
	TimeScale float64 // real-time multiplier applied to simulated durations

	diskReadBytes  atomic.Int64
	diskWriteBytes atomic.Int64
	netBytes       atomic.Int64
	procBytes      atomic.Int64
	simulatedNanos atomic.Int64
}

// DefaultCostModel approximates the paper's hardware, heavily time-scaled:
// ~1.2 GB/s aggregate disk per node (12 SATA disks), 10 GbE network.
func DefaultCostModel() *CostModel {
	return &CostModel{
		DiskReadBps:  1.2e9,
		DiskWriteBps: 0.9e9,
		NetBps:       1.25e9, // 10 Gbit/s
		NetLatency:   200 * time.Microsecond,
		ProcBps:      0.8e9,
		TimeScale:    1.0,
	}
}

// Stats is a snapshot of accumulated cost counters.
type Stats struct {
	DiskReadBytes  int64
	DiskWriteBytes int64
	NetBytes       int64
	ProcBytes      int64
	SimulatedTime  time.Duration
}

// Stats returns the accumulated counters. Safe for concurrent use.
func (c *CostModel) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		DiskReadBytes:  c.diskReadBytes.Load(),
		DiskWriteBytes: c.diskWriteBytes.Load(),
		NetBytes:       c.netBytes.Load(),
		ProcBytes:      c.procBytes.Load(),
		SimulatedTime:  time.Duration(c.simulatedNanos.Load()),
	}
}

// ResetStats zeroes the accumulated counters.
func (c *CostModel) ResetStats() {
	if c == nil {
		return
	}
	c.diskReadBytes.Store(0)
	c.diskWriteBytes.Store(0)
	c.netBytes.Store(0)
	c.procBytes.Store(0)
	c.simulatedNanos.Store(0)
}

func (c *CostModel) duration(bytes int, bps float64) time.Duration {
	if bps <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) / bps * float64(time.Second))
}

// charge serializes d of simulated device time behind the device's queue
// and sleeps the scaled amount.
func (c *CostModel) charge(mu *sync.Mutex, free *time.Time, d time.Duration) {
	if d <= 0 {
		return
	}
	c.simulatedNanos.Add(int64(d))
	scaled := time.Duration(float64(d) * c.TimeScale)
	if scaled <= 0 {
		return
	}
	mu.Lock()
	now := time.Now()
	start := now
	if free.After(now) {
		start = *free
	}
	until := start.Add(scaled)
	*free = until
	mu.Unlock()
	time.Sleep(time.Until(until))
}

// ChargeDiskRead charges a read of n bytes against node's disk.
func (c *CostModel) ChargeDiskRead(node *Node, n int) {
	if c == nil || node == nil {
		return
	}
	c.diskReadBytes.Add(int64(n))
	c.charge(&node.diskMu, &node.diskFree, c.duration(n, c.DiskReadBps))
}

// ChargeDiskWrite charges a write of n bytes against node's disk.
func (c *CostModel) ChargeDiskWrite(node *Node, n int) {
	if c == nil || node == nil {
		return
	}
	c.diskWriteBytes.Add(int64(n))
	c.charge(&node.diskMu, &node.diskFree, c.duration(n, c.DiskWriteBps))
}

// ChargeNet charges a transfer of n bytes between two nodes. Transfers where
// both endpoints are the same node are free (loopback), which is what makes
// the stream coordinator's locality-aware placement matter.
func (c *CostModel) ChargeNet(from, to *Node, n int) {
	if c == nil || from == nil || to == nil || from == to {
		return
	}
	c.netBytes.Add(int64(n))
	d := c.NetLatency + c.duration(n, c.NetBps)
	// Charge the sender's NIC; the receiver's side is assumed symmetric and
	// charging both would double-count a single wire transfer.
	c.charge(&from.nicMu, &from.nicFree, d)
}

// ChargeProc charges one processing pass over n bytes on node's CPU.
func (c *CostModel) ChargeProc(node *Node, n int) {
	if c == nil || node == nil {
		return
	}
	c.procBytes.Add(int64(n))
	c.charge(&node.cpuMu, &node.cpuFree, c.duration(n, c.ProcBps))
}

// ChargeDelay charges a fixed simulated duration against node's CPU —
// e.g. a MapReduce job's startup/scheduling overhead.
func (c *CostModel) ChargeDelay(node *Node, d time.Duration) {
	if c == nil || node == nil || d <= 0 {
		return
	}
	c.charge(&node.cpuMu, &node.cpuFree, d)
}
