package cluster

import (
	"sync"
	"testing"
	"time"
)

func TestTopologyBasics(t *testing.T) {
	top := NewTopology(4)
	if top.Len() != 4 {
		t.Fatalf("Len = %d", top.Len())
	}
	if top.Node(0).Addr != "10.0.0.1" || top.Node(3).Addr != "10.0.0.4" {
		t.Errorf("addresses: %s %s", top.Node(0).Addr, top.Node(3).Addr)
	}
	if top.ByAddr("10.0.0.2") != top.Node(1) {
		t.Error("ByAddr lookup failed")
	}
	if top.ByAddr("1.2.3.4") != nil {
		t.Error("unknown addr should return nil")
	}
	if top.Node(1).Name != "node1" {
		t.Errorf("name: %s", top.Node(1).Name)
	}
}

func TestTopologyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range node")
		}
	}()
	NewTopology(2).Node(5)
}

func TestCostModelAccounting(t *testing.T) {
	top := NewTopology(2)
	c := &CostModel{DiskReadBps: 1e6, DiskWriteBps: 1e6, NetBps: 1e6, TimeScale: 0}
	c.ChargeDiskRead(top.Node(0), 100)
	c.ChargeDiskWrite(top.Node(0), 200)
	c.ChargeNet(top.Node(0), top.Node(1), 300)
	s := c.Stats()
	if s.DiskReadBytes != 100 || s.DiskWriteBytes != 200 || s.NetBytes != 300 {
		t.Errorf("stats = %+v", s)
	}
	if s.SimulatedTime <= 0 {
		t.Error("simulated time should accumulate even with TimeScale 0")
	}
	c.ResetStats()
	if c.Stats() != (Stats{}) {
		t.Error("ResetStats should zero counters")
	}
}

func TestLocalNetworkIsFree(t *testing.T) {
	top := NewTopology(2)
	c := DefaultCostModel()
	c.TimeScale = 0
	c.ChargeNet(top.Node(0), top.Node(0), 1<<20)
	if c.Stats().NetBytes != 0 {
		t.Error("node-local transfer must not be charged")
	}
	c.ChargeNet(top.Node(0), top.Node(1), 1<<20)
	if c.Stats().NetBytes != 1<<20 {
		t.Error("remote transfer must be charged")
	}
}

func TestNilCostModelIsNoop(t *testing.T) {
	var c *CostModel
	top := NewTopology(1)
	c.ChargeDiskRead(top.Node(0), 10) // must not panic
	c.ChargeDiskWrite(top.Node(0), 10)
	c.ChargeNet(top.Node(0), top.Node(0), 10)
	if c.Stats() != (Stats{}) {
		t.Error("nil cost model should report zero stats")
	}
	c.ResetStats()
}

func TestChargeSleepsScaledDuration(t *testing.T) {
	top := NewTopology(1)
	// 1 MB at 1 MB/s simulated = 1 s simulated; TimeScale 0.01 => ~10 ms real.
	c := &CostModel{DiskReadBps: 1e6, TimeScale: 0.01}
	start := time.Now()
	c.ChargeDiskRead(top.Node(0), 1_000_000)
	elapsed := time.Since(start)
	if elapsed < 8*time.Millisecond {
		t.Errorf("charge slept only %v, want ~10ms", elapsed)
	}
	if got := c.Stats().SimulatedTime; got < 900*time.Millisecond || got > 1100*time.Millisecond {
		t.Errorf("simulated time %v, want ~1s", got)
	}
}

func TestDeviceContentionSerializes(t *testing.T) {
	top := NewTopology(1)
	c := &CostModel{DiskWriteBps: 1e6, TimeScale: 0.005} // 1 MB => 5 ms real
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.ChargeDiskWrite(top.Node(0), 1_000_000)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	// Four concurrent 5 ms charges on one disk must take ~20 ms, not ~5 ms.
	if elapsed < 15*time.Millisecond {
		t.Errorf("concurrent charges completed in %v; disk contention not modelled", elapsed)
	}
}

func TestConcurrentStatsSafe(t *testing.T) {
	top := NewTopology(3)
	c := &CostModel{DiskReadBps: 1e15, NetBps: 1e15, TimeScale: 0}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.ChargeDiskRead(top.Node(i%3), 1)
				c.ChargeNet(top.Node(i%3), top.Node((i+1)%3), 1)
				_ = c.Stats()
			}
		}(i)
	}
	wg.Wait()
	if c.Stats().DiskReadBytes != 800 {
		t.Errorf("disk read bytes = %d, want 800", c.Stats().DiskReadBytes)
	}
}
