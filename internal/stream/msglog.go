package stream

import (
	"fmt"
	"sync"

	"sqlml/internal/cluster"
	"sqlml/internal/hadoopfmt"
	"sqlml/internal/row"
)

// MessageLog is the §8 future-work extension: a Kafka-like persistent
// message log between the SQL and ML systems. Producers append encoded
// rows to topic partitions; consumers read by offset, so a crashed ML
// worker can replay its partition from its last committed offset —
// at-least-once delivery without restarting the SQL side. The log also
// absorbs a slow consumer: producers never block on consumption.
type MessageLog struct {
	mu     sync.Mutex
	cond   *sync.Cond
	topics map[string]*topic
}

type topic struct {
	schema     row.Schema
	partitions [][][]byte // partition → ordered frames
	sealed     []bool     // producer finished the partition
	committed  []int64    // consumer-committed offsets
	epochs     []int64    // per-partition consumer fencing epochs
}

// NewMessageLog returns an empty log.
func NewMessageLog() *MessageLog {
	l := &MessageLog{topics: make(map[string]*topic)}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// CreateTopic defines a topic with the given partition count and row
// schema.
func (l *MessageLog) CreateTopic(name string, partitions int, schema row.Schema) error {
	if partitions < 1 {
		return fmt.Errorf("stream: topic needs at least one partition")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.topics[name]; ok {
		return fmt.Errorf("stream: topic %q exists", name)
	}
	l.topics[name] = &topic{
		schema:     schema,
		partitions: make([][][]byte, partitions),
		sealed:     make([]bool, partitions),
		committed:  make([]int64, partitions),
		epochs:     make([]int64, partitions),
	}
	return nil
}

func (l *MessageLog) topic(name string) (*topic, error) {
	t, ok := l.topics[name]
	if !ok {
		return nil, fmt.Errorf("stream: unknown topic %q", name)
	}
	return t, nil
}

// Append adds one row to a topic partition.
func (l *MessageLog) Append(name string, partition int, r row.Row) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	t, err := l.topic(name)
	if err != nil {
		return err
	}
	if partition < 0 || partition >= len(t.partitions) {
		return fmt.Errorf("stream: partition %d out of range", partition)
	}
	if t.sealed[partition] {
		return fmt.Errorf("stream: partition %d is sealed", partition)
	}
	t.partitions[partition] = append(t.partitions[partition], row.AppendBinary(nil, r))
	l.cond.Broadcast()
	return nil
}

// Seal marks a partition complete; readers drain and finish.
func (l *MessageLog) Seal(name string, partition int) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	t, err := l.topic(name)
	if err != nil {
		return err
	}
	t.sealed[partition] = true
	l.cond.Broadcast()
	return nil
}

// OpenConsumer registers a new consumer of a partition: it bumps the
// partition's fencing epoch — invalidating any still-running prior
// consumer's commits — and returns the new epoch alongside the committed
// offset to resume from. A replacement task attempt calls this before
// reading, so the zombie attempt it replaces can no longer move the
// committed offset (the consumer-side analogue of the sender's epoch
// fencing at the coordinator).
func (l *MessageLog) OpenConsumer(name string, partition int) (epoch, offset int64, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	t, err := l.topic(name)
	if err != nil {
		return 0, 0, err
	}
	if partition < 0 || partition >= len(t.partitions) {
		return 0, 0, fmt.Errorf("stream: partition %d out of range", partition)
	}
	t.epochs[partition]++
	return t.epochs[partition], t.committed[partition], nil
}

// CommitAs records a consumer's progress through a partition; a replay
// after failure resumes from the committed offset. A commit carrying a
// superseded epoch — a zombie whose replacement has already opened the
// partition — is rejected so delayed duplicate commits cannot rewind or
// race the live consumer.
func (l *MessageLog) CommitAs(name string, partition int, epoch, offset int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	t, err := l.topic(name)
	if err != nil {
		return err
	}
	if epoch != t.epochs[partition] {
		return fmt.Errorf("stream: commit fenced: consumer epoch %d superseded by %d", epoch, t.epochs[partition])
	}
	if offset > t.committed[partition] {
		t.committed[partition] = offset
	}
	return nil
}

// Committed returns a partition's committed offset.
func (l *MessageLog) Committed(name string, partition int) (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	t, err := l.topic(name)
	if err != nil {
		return 0, err
	}
	return t.committed[partition], nil
}

// read blocks until a frame at offset exists, the partition seals, or the
// partition disappears; ok=false means end of partition.
func (l *MessageLog) read(name string, partition int, offset int64) ([]byte, bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		t, err := l.topic(name)
		if err != nil {
			return nil, false, err
		}
		p := t.partitions[partition]
		if offset < int64(len(p)) {
			return p[offset], true, nil
		}
		if t.sealed[partition] {
			return nil, false, nil
		}
		l.cond.Wait()
	}
}

// LogFormat is an InputFormat reading a message-log topic: one split per
// partition. It gives the ML side the same seam as the direct stream,
// demonstrating that the transfer medium is swappable.
type LogFormat struct {
	Log   *MessageLog
	Topic string
	// StartFromCommitted resumes each partition from its committed offset
	// (the at-least-once replay path).
	StartFromCommitted bool
}

// Schema implements hadoopfmt.InputFormat.
func (f *LogFormat) Schema() (row.Schema, error) {
	f.Log.mu.Lock()
	defer f.Log.mu.Unlock()
	t, err := f.Log.topic(f.Topic)
	if err != nil {
		return row.Schema{}, err
	}
	return t.schema, nil
}

// Splits implements hadoopfmt.InputFormat: one split per log partition.
func (f *LogFormat) Splits(int) ([]hadoopfmt.InputSplit, error) {
	f.Log.mu.Lock()
	defer f.Log.mu.Unlock()
	t, err := f.Log.topic(f.Topic)
	if err != nil {
		return nil, err
	}
	out := make([]hadoopfmt.InputSplit, len(t.partitions))
	for i := range t.partitions {
		out[i] = &logSplit{topic: f.Topic, partition: i}
	}
	return out, nil
}

// Open implements hadoopfmt.InputFormat.
func (f *LogFormat) Open(split hadoopfmt.InputSplit, _ *cluster.Node) (hadoopfmt.RecordReader, error) {
	ls, ok := split.(*logSplit)
	if !ok {
		return nil, fmt.Errorf("stream: LogFormat cannot open %T", split)
	}
	epoch, committed, err := f.Log.OpenConsumer(f.Topic, ls.partition)
	if err != nil {
		return nil, err
	}
	offset := int64(0)
	if f.StartFromCommitted {
		offset = committed
	}
	return &logReader{log: f.Log, topic: f.Topic, partition: ls.partition, offset: offset, epoch: epoch}, nil
}

type logSplit struct {
	topic     string
	partition int
}

func (s *logSplit) Locations() []string { return nil }
func (s *logSplit) Length() int64       { return 0 }
func (s *logSplit) String() string {
	return fmt.Sprintf("log:%s/partition-%d", s.topic, s.partition)
}

type logReader struct {
	log       *MessageLog
	topic     string
	partition int
	offset    int64
	epoch     int64
}

// Next implements hadoopfmt.RecordReader, committing progress as it goes.
// A reader fenced by a newer consumer of the same partition surfaces the
// rejection as a read error, stopping the zombie attempt.
func (r *logReader) Next() (row.Row, bool, error) {
	frame, ok, err := r.log.read(r.topic, r.partition, r.offset)
	if err != nil || !ok {
		return nil, false, err
	}
	out, err := row.DecodeBinary(frame[4:])
	if err != nil {
		return nil, false, err
	}
	r.offset++
	if err := r.log.CommitAs(r.topic, r.partition, r.epoch, r.offset); err != nil {
		return nil, false, err
	}
	return out, true, nil
}

// Close implements hadoopfmt.RecordReader.
func (r *logReader) Close() error { return nil }
