package stream

import (
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"sqlml/internal/fault"
)

func TestResumePoint(t *testing.T) {
	spool := []spooledBlock{
		{frame: []byte("a"), rows: 64},
		{frame: []byte("b"), rows: 64},
		{frame: []byte("c"), rows: 22},
	}
	cases := []struct {
		consumed  uint64
		wantIdx   int
		wantStart uint64
	}{
		{0, 0, 0},           // fresh reader: resend everything
		{1, 0, 0},           // mid first frame
		{63, 0, 0},          // row 63 unseen and frame 0 holds rows 0-63
		{64, 1, 64},         // first frame fully consumed
		{100, 1, 64},        // mid second frame
		{128, 2, 128},       // two frames consumed
		{150, 3, 150},       // everything consumed: resend nothing
		{151, -1, 0},        // beyond the spool: protocol violation
		{^uint64(0), -1, 0}, // absurdly beyond
	}
	for _, c := range cases {
		idx, start := resumePoint(spool, c.consumed)
		if idx != c.wantIdx || start != c.wantStart {
			t.Errorf("resumePoint(consumed=%d) = (%d, %d), want (%d, %d)",
				c.consumed, idx, start, c.wantIdx, c.wantStart)
		}
	}
	if idx, start := resumePoint(nil, 0); idx != 0 || start != 0 {
		t.Errorf("resumePoint(empty, 0) = (%d, %d), want (0, 0)", idx, start)
	}
	if idx, _ := resumePoint(nil, 1); idx != -1 {
		t.Errorf("resumePoint(empty, 1) = %d, want -1", idx)
	}
}

func TestBackoffDelayCappedAndDeterministic(t *testing.T) {
	base := 10 * time.Millisecond
	for attempt := 0; attempt < 12; attempt++ {
		d1 := backoffDelay(base, attempt, 3, 7)
		d2 := backoffDelay(base, attempt, 3, 7)
		if d1 != d2 {
			t.Fatalf("attempt %d: jitter not deterministic (%v vs %v)", attempt, d1, d2)
		}
		if d1 < base || d1 >= 2*500*time.Millisecond {
			t.Fatalf("attempt %d: delay %v outside [base, 2*cap)", attempt, d1)
		}
	}
	if backoffDelay(base, 2, 1, 1) == backoffDelay(base, 2, 1, 2) {
		t.Error("different splits share identical jitter; schedules would synchronize")
	}
}

// TestConnResetRecoversViaSpoolResume is the PR's core acceptance check: a
// single injected data-connection reset is absorbed by the sender's
// backoff-and-reconnect path resuming from the spill spool — exactly-once
// delivery, zero §6 group restarts (asserted via the coordinator's restart
// counter, which only group re-registrations touch).
func TestConnResetRecoversViaSpoolResume(t *testing.T) {
	for _, tc := range []struct {
		name string
		seed int64
		ops  []fault.Op
	}{
		{"reset/seed1", 1, []fault.Op{fault.Reset}},
		{"reset/seed2", 2, []fault.Op{fault.Reset}},
		{"short-write/seed3", 3, []fault.Op{fault.ShortWrite}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			env := newTransferEnv(t)
			job := fmt.Sprintf("jreset-%d", tc.seed)
			f := &InputFormat{CoordAddr: env.coordAddr, Job: job, AcceptTimeout: 5 * time.Second}
			dialer := fault.NewDialer(tc.seed, fault.DialerConfig{
				MaxFaults: 1,
				Ops:       tc.ops,
				// Rows per slot encode to a few KB; keep the scripted offset
				// well inside that so the fault always fires mid-stream.
				MaxByte: 1 << 10,
			})
			cfg := DefaultSenderConfig()
			cfg.Dial = dialer.Dial
			cfg.BlockRows = 64 // several frames per slot, so resume is frame-aligned
			d, stats := env.runTransfer(t, job, 2, 2, 400, f, cfg)
			if dialer.Injected() != 1 {
				t.Fatalf("armed %d faults, want 1", dialer.Injected())
			}
			checkExactlyOnce(t, d, 2, 400)
			restarts, reconnects := 0, 0
			for _, s := range stats {
				restarts += s.Restarts
				reconnects += s.Reconnects
			}
			if reconnects == 0 {
				t.Error("injected reset never exercised the reconnect path")
			}
			if restarts != 0 {
				t.Errorf("sender recorded %d group restarts, want pure per-target recovery", restarts)
			}
			if got := env.coord.Restarts(job); got != 0 {
				t.Errorf("coordinator counted %d group restarts, want 0", got)
			}
		})
	}
}

// TestConnStallHeldByFlowControl: a stalled connection delays but does not
// fail the transfer — the write blocks for the stall, resumes, and no
// recovery machinery runs.
func TestConnStallDeliversWithoutRecovery(t *testing.T) {
	env := newTransferEnv(t)
	f := &InputFormat{CoordAddr: env.coordAddr, Job: "jstall", AcceptTimeout: 5 * time.Second}
	dialer := fault.NewDialer(7, fault.DialerConfig{
		MaxFaults: 1,
		Ops:       []fault.Op{fault.Stall},
		MaxByte:   1 << 10,
		StallFor:  150 * time.Millisecond,
	})
	cfg := DefaultSenderConfig()
	cfg.Dial = dialer.Dial
	cfg.BlockRows = 64
	d, stats := env.runTransfer(t, "jstall", 2, 2, 300, f, cfg)
	checkExactlyOnce(t, d, 2, 300)
	for _, s := range stats {
		if s.Restarts != 0 || s.Reconnects != 0 {
			t.Errorf("stall triggered recovery (restarts=%d reconnects=%d); want none",
				s.Restarts, s.Reconnects)
		}
	}
}

// coordClient is a minimal raw JSON-lines client for coordinator protocol
// tests that need behaviors the sender never exercises (silent workers,
// duplicate registrations).
type coordClient struct {
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder
}

func dialCoord(t *testing.T, addr string) *coordClient {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	return &coordClient{conn: conn, enc: json.NewEncoder(conn), dec: json.NewDecoder(conn)}
}

func (c *coordClient) send(t *testing.T, msg message) {
	t.Helper()
	if err := c.enc.Encode(msg); err != nil {
		t.Fatal(err)
	}
}

func (c *coordClient) recv(t *testing.T) message {
	t.Helper()
	var reply message
	if err := c.conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := c.dec.Decode(&reply); err != nil {
		t.Fatal(err)
	}
	return reply
}

// TestLeaseExpiryFencesHungWorker: a registered worker that stops
// heartbeating loses its lease — the coordinator severs its parked
// connection and counts the expiry — while a worker that keeps
// heartbeating is untouched. This is the hung-not-disconnected detection
// a pure read-EOF check cannot provide.
func TestLeaseExpiryFencesHungWorker(t *testing.T) {
	coord := NewCoordinator(nil)
	coord.LeaseDuration = 150 * time.Millisecond
	addr, err := coord.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Stop()

	reg := func(worker int) *coordClient {
		c := dialCoord(t, addr)
		c.send(t, message{Type: "register_sql", Job: "jlease", Worker: worker,
			NumWorkers: 3, Command: "svm", Schema: "id:int", K: 1})
		return c
	}
	hung := reg(0)
	live := reg(1)

	// Renew worker 1's lease well past several expiry windows; worker 0
	// stays silent.
	deadline := time.Now().Add(600 * time.Millisecond)
	for time.Now().Before(deadline) {
		live.send(t, message{Type: "heartbeat", Job: "jlease", Worker: 1})
		time.Sleep(30 * time.Millisecond)
	}

	if got := coord.ExpiredLeases("jlease"); got != 1 {
		t.Fatalf("expired leases = %d, want 1 (only the silent worker)", got)
	}
	// The hung worker's parked connection must be severed...
	if err := hung.conn.SetReadDeadline(time.Now().Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := hung.conn.Read(make([]byte, 1)); err == nil {
		t.Error("hung worker's connection still open after lease expiry")
	}
	// ...while the heartbeating worker stays parked (read must time out,
	// not observe a close).
	if err := live.conn.SetReadDeadline(time.Now().Add(100 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if _, err := live.conn.Read(make([]byte, 1)); err == nil {
		t.Error("live worker unexpectedly received data")
	} else if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
		t.Errorf("live worker's connection severed: %v", err)
	}
}

// TestEpochFencing: every register_ml bumps the split's epoch, get_target
// serves the latest registration, and unknown splits are an error (the
// sender's backoff loop absorbs it rather than parking forever).
func TestEpochFencing(t *testing.T) {
	coord := NewCoordinator(nil)
	addr, err := coord.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Stop()

	sql := dialCoord(t, addr)
	sql.send(t, message{Type: "register_sql", Job: "jepoch", Worker: 0,
		NumWorkers: 1, Command: "svm", Schema: "id:int", K: 1})

	register := func(listen string) uint32 {
		c := dialCoord(t, addr)
		c.send(t, message{Type: "register_ml", Job: "jepoch", Split: 0,
			Listen: listen, Addr: "node1"})
		reply := c.recv(t)
		if reply.Type != "ok" {
			t.Fatalf("register_ml reply %q: %s", reply.Type, reply.Error)
		}
		return reply.Epoch
	}
	if e := register("127.0.0.1:11111"); e != 1 {
		t.Fatalf("first registration epoch = %d, want 1", e)
	}
	// A re-executed reader registers again: new listener, bumped epoch.
	if e := register("127.0.0.1:22222"); e != 2 {
		t.Fatalf("second registration epoch = %d, want 2", e)
	}

	gt := dialCoord(t, addr)
	gt.send(t, message{Type: "get_target", Job: "jepoch", Split: 0})
	reply := gt.recv(t)
	if reply.Type != "target" || len(reply.Targets) != 1 {
		t.Fatalf("get_target reply %q (%d targets): %s", reply.Type, len(reply.Targets), reply.Error)
	}
	got := reply.Targets[0]
	if got.Epoch != 2 || got.Listen != "127.0.0.1:22222" {
		t.Errorf("get_target = epoch %d listen %s, want the latest registration (2, 127.0.0.1:22222)", got.Epoch, got.Listen)
	}

	bad := dialCoord(t, addr)
	bad.send(t, message{Type: "get_target", Job: "jepoch", Split: 9})
	if reply := bad.recv(t); reply.Type != "error" {
		t.Errorf("get_target for unknown split replied %q, want error", reply.Type)
	}
}

// TestMessageLogZombieConsumerFenced: opening a partition bumps its
// consumer epoch, so a zombie reader from a superseded task attempt has
// its commits rejected and cannot race or rewind the live replacement.
func TestMessageLogZombieConsumerFenced(t *testing.T) {
	l := NewMessageLog()
	if err := l.CreateTopic("z", 1, streamSchema()); err != nil {
		t.Fatal(err)
	}
	rows := genRows(0, 20)
	for _, r := range rows {
		if err := l.Append("z", 0, r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Seal("z", 0); err != nil {
		t.Fatal(err)
	}

	f := &LogFormat{Log: l, Topic: "z"}
	splits, err := f.Splits(0)
	if err != nil {
		t.Fatal(err)
	}
	zombie, err := f.Open(splits[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, ok, err := zombie.Next(); !ok || err != nil {
			t.Fatalf("zombie read %d: ok=%v err=%v", i, ok, err)
		}
	}
	if off, _ := l.Committed("z", 0); off != 5 {
		t.Fatalf("committed = %d before replacement, want 5", off)
	}

	// The replacement attempt opens the partition, fencing the zombie.
	f2 := &LogFormat{Log: l, Topic: "z", StartFromCommitted: true}
	live, err := f2.Open(splits[0], nil)
	if err != nil {
		t.Fatal(err)
	}

	// The zombie keeps running for a while: its very next commit must be
	// rejected, surfacing as a read error, and must not move the offset.
	if _, ok, err := zombie.Next(); err == nil || ok {
		t.Fatalf("zombie Next after fencing = (ok=%v, err=%v), want commit-fenced error", ok, err)
	} else if !strings.Contains(err.Error(), "fenced") {
		t.Errorf("zombie error does not name fencing: %v", err)
	}
	if off, _ := l.Committed("z", 0); off != 5 {
		t.Errorf("zombie commit moved the offset to %d", off)
	}

	// The live consumer drains the remaining rows from the committed offset.
	var got int
	for {
		r, ok, err := live.Next()
		if err != nil {
			t.Fatalf("live read: %v", err)
		}
		if !ok {
			break
		}
		if want := rows[5+got][0].AsInt(); r[0].AsInt() != want {
			t.Fatalf("live row %d = %v, want id %d", got, r, want)
		}
		got++
	}
	if got != 15 {
		t.Errorf("live consumer read %d rows, want 15", got)
	}
	if off, _ := l.Committed("z", 0); off != 20 {
		t.Errorf("final committed = %d, want 20", off)
	}

	// Direct API: stale epochs are rejected, the current one is accepted.
	epoch, committed, err := l.OpenConsumer("z", 0)
	if err != nil {
		t.Fatal(err)
	}
	if committed != 20 {
		t.Errorf("OpenConsumer committed = %d, want 20", committed)
	}
	if err := l.CommitAs("z", 0, epoch-1, 20); err == nil {
		t.Error("stale-epoch CommitAs accepted")
	}
	if err := l.CommitAs("z", 0, epoch, 20); err != nil {
		t.Errorf("current-epoch CommitAs rejected: %v", err)
	}
	if _, _, err := l.OpenConsumer("z", 5); err == nil {
		t.Error("OpenConsumer accepted an out-of-range partition")
	}
	if _, _, err := l.OpenConsumer("nope", 0); err == nil {
		t.Error("OpenConsumer accepted an unknown topic")
	}
}
