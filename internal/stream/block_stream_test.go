package stream

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"

	"sqlml/internal/hadoopfmt"
	"sqlml/internal/ml"
	"sqlml/internal/row"
)

// TestMixedVersionHandshakeReaderPinsV1 covers the wire-format negotiation:
// one reader that only speaks the v1 per-row protocol pins the whole job to
// it — the sender falls back to one frame per row, and delivery still
// completes exactly-once.
func TestMixedVersionHandshakeReaderPinsV1(t *testing.T) {
	env := newTransferEnv(t)
	f := &InputFormat{CoordAddr: env.coordAddr, Job: "jv1reader", Proto: row.WireProtoRow}
	d, stats := env.runTransfer(t, "jv1reader", 2, 1, 150, f, DefaultSenderConfig())
	checkExactlyOnce(t, d, 2, 150)
	for _, s := range stats {
		if s.FramesSent != s.RowsSent {
			t.Errorf("v1-pinned job sent %d frames for %d rows; want one frame per row",
				s.FramesSent, s.RowsSent)
		}
	}
}

// TestMixedVersionHandshakeSenderPinsV1 is the other direction: a sender
// configured for the v1 protocol ignores the coordinator's block offer, and
// the (block-capable) reader decodes the per-row stream fine.
func TestMixedVersionHandshakeSenderPinsV1(t *testing.T) {
	env := newTransferEnv(t)
	f := &InputFormat{CoordAddr: env.coordAddr, Job: "jv1sender"}
	cfg := DefaultSenderConfig()
	cfg.Proto = row.WireProtoRow
	d, stats := env.runTransfer(t, "jv1sender", 2, 1, 150, f, cfg)
	checkExactlyOnce(t, d, 2, 150)
	for _, s := range stats {
		if s.FramesSent != s.RowsSent {
			t.Errorf("v1 sender sent %d frames for %d rows; want one frame per row",
				s.FramesSent, s.RowsSent)
		}
	}
}

// ingestFingerprint canonicalizes a dataset for cross-run comparison:
// sorted (label, features) lines, independent of partition order.
func ingestFingerprint(d *ml.Dataset) string {
	pts := d.All()
	lines := make([]string, len(pts))
	for i, p := range pts {
		lines[i] = fmt.Sprintf("%v|%v", p.Label, p.Features)
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// TestMixedVersionMatrix exercises every sender×reader protocol
// combination. Each job must pin to min(proto): a v1 peer on either side
// forces per-row frames, v2×v3 degrades to v2 blocks, and only v3×v3
// gets columnar compression (raw_bytes > wire_bytes). The ingested
// dataset must be identical in all nine combos.
func TestMixedVersionMatrix(t *testing.T) {
	env := newTransferEnv(t)
	protos := []int{row.WireProtoRow, row.WireProtoBlock, row.WireProtoCol}
	var want string
	for _, sp := range protos {
		for _, rp := range protos {
			job := fmt.Sprintf("jmatrix-s%d-r%d", sp, rp)
			f := &InputFormat{CoordAddr: env.coordAddr, Job: job, Proto: rp}
			cfg := DefaultSenderConfig()
			cfg.Proto = sp
			d, stats := env.runTransfer(t, job, 2, 2, 120, f, cfg)
			checkExactlyOnce(t, d, 2, 120)
			fp := ingestFingerprint(d)
			if want == "" {
				want = fp
			} else if fp != want {
				t.Errorf("sender v%d × reader v%d: ingested dataset differs from the v1×v1 run", sp, rp)
			}
			min := sp
			if rp < min {
				min = rp
			}
			for _, s := range stats {
				if min == row.WireProtoRow {
					if s.FramesSent != s.RowsSent {
						t.Errorf("sender v%d × reader v%d: %d frames for %d rows; a v1 peer must pin to one frame per row",
							sp, rp, s.FramesSent, s.RowsSent)
					}
				} else if s.FramesSent >= s.RowsSent {
					t.Errorf("sender v%d × reader v%d: %d frames for %d rows; blocks should coalesce",
						sp, rp, s.FramesSent, s.RowsSent)
				}
				if min >= row.WireProtoCol {
					if s.RawBytes <= s.WireBytes {
						t.Errorf("sender v%d × reader v%d: raw %d ≤ wire %d; v3 compression absent",
							sp, rp, s.RawBytes, s.WireBytes)
					}
				} else if s.RawBytes != s.WireBytes {
					t.Errorf("sender v%d × reader v%d: raw %d ≠ wire %d; pre-v3 frames are the raw encoding",
						sp, rp, s.RawBytes, s.WireBytes)
				}
			}
		}
	}
}

// drainSplits consumes every split of f batch-wise without retaining rows,
// so the receiving side contributes no lasting heap growth.
func drainSplits(f *InputFormat) error {
	splits, err := f.Splits(0)
	if err != nil {
		return err
	}
	var wg sync.WaitGroup
	errs := make([]error, len(splits))
	for i, sp := range splits {
		wg.Add(1)
		go func(i int, sp hadoopfmt.InputSplit) {
			defer wg.Done()
			rr, err := f.Open(sp, nil)
			if err != nil {
				errs[i] = err
				return
			}
			defer func() {
				if cerr := rr.Close(); cerr != nil && errs[i] == nil {
					errs[i] = cerr
				}
			}()
			var buf []row.Row
			for {
				batch, ok, err := hadoopfmt.ReadBatch(rr, buf[:0])
				if err != nil {
					errs[i] = err
					return
				}
				if !ok {
					return
				}
				buf = batch
			}
		}(i, sp)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// probeIterator serves rows and fires probe once, right before row `at` —
// from the sender's own consume goroutine, so the probe observes the
// sender mid-transfer with most of the stream already encoded.
type probeIterator struct {
	rows  []row.Row
	i     int
	at    int
	probe func()
}

func (p *probeIterator) Next() (row.Row, bool, error) {
	if p.i == p.at && p.probe != nil {
		p.probe()
		p.probe = nil
	}
	if p.i >= len(p.rows) {
		return nil, false, nil
	}
	r := p.rows[p.i]
	p.i++
	return r, true, nil
}

// liveHeap forces a full GC and returns the live heap bytes.
func liveHeap() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// TestSenderMemoryBoundedWithoutReplay pins the pooling contract: with the
// replay spool disabled, block buffers recycle through the pool and the
// sender's residency stays O(blocks in flight) per target instead of
// O(stream). The run with replay enabled — which must retain every frame
// until the ACK — serves as the yardstick. Live heap is probed with a
// forced GC from inside the sender's input iterator near the end of the
// stream (when the spool is near-full), so transient decode garbage
// cannot inflate the measurement.
func TestSenderMemoryBoundedWithoutReplay(t *testing.T) {
	env := newTransferEnv(t)
	const numRows = 400_000
	rows := genRows(0, numRows)
	// Pool buffers survive the probe's GC; keep their count small and
	// deterministic with a short queue.
	const queueFrames = 8

	runOnce := func(job string, disable bool) uint64 {
		f := &InputFormat{CoordAddr: env.coordAddr, Job: job}
		drained := make(chan error, 1)
		go func() {
			<-env.launched
			drained <- drainSplits(f)
		}()
		cfg := DefaultSenderConfig()
		cfg.DisableReplay = disable
		cfg.QueueFrames = queueFrames
		base := liveHeap()
		var atProbe uint64
		it := &probeIterator{rows: rows, at: numRows - 1, probe: func() { atProbe = liveHeap() }}
		if _, err := Send(SendRequest{
			CoordAddr: env.coordAddr, Job: job, Command: "svm",
			Worker: 0, NumWorkers: 1, K: 1,
			Node: env.topo.Node(1), Topo: env.topo,
			Schema: streamSchema(), Input: it,
			Config: cfg,
		}); err != nil {
			t.Fatal(err)
		}
		if err := <-drained; err != nil {
			t.Fatal(err)
		}
		if atProbe < base {
			return 0
		}
		return atProbe - base
	}

	replayOn := runOnce("jresident-replay", false)
	replayOff := runOnce("jresident-noreplay", true)
	if replayOff*2 > replayOn {
		t.Errorf("live heap growth without replay = %d B, with replay = %d B; recycling should keep it well under half",
			replayOff, replayOn)
	}
}
