// Package stream implements the paper's parallel streaming data transfer
// (§3): a long-standing coordinator service that matchmakes N SQL workers
// with M = N·k ML workers, a SQL-side sender table UDF, and an ML-side
// SQLStreamInputFormat, so rows flow from SQL workers to ML workers over
// TCP sockets without touching the file system.
//
// The information and data flow follows Figure 2 of the paper:
//
//	(1) each SQL worker registers with the coordinator (worker id, address,
//	    total worker count, plus the command/arguments of the ML job)
//	(2) when all have registered, the coordinator launches the ML job
//	(3) the ML job's InputFormat asks the coordinator for its InputSplits:
//	    m = n·k splits, grouped k per SQL worker, each carrying the SQL
//	    worker's address as its (locality) location
//	(4) spawned ML workers register back with the coordinator
//	(5) the coordinator matches each SQL worker with its ML workers
//	(6) and sends the match information to both sides
//	(7) SQL workers establish TCP connections to their ML workers
//	(8) and stream rows round-robin through per-target send buffers
//
// Failure handling implements the §6 discussion: when a transfer between a
// SQL worker and one of its ML workers breaks, the SQL worker re-registers
// (restart) and all ML workers of that group re-register after their reads
// fail — the coordinator re-matches and the transfer is resent from
// scratch, with the ML side discarding partial rows via task re-execution
// (hadoopfmt.RetryableError).
package stream

import (
	"bufio"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"sqlml/internal/row"
)

// JobSpec is what a launcher receives when all SQL workers of a job have
// registered (Figure 2, step 2).
type JobSpec struct {
	Job        string
	Command    string
	Args       []string
	NumWorkers int
	SplitsPer  int // k
	Schema     string
}

// Launcher starts the ML job. It is invoked exactly once per job, on its
// own goroutine, when registration completes.
type Launcher func(spec JobSpec)

// SplitInfo describes one stream split handed to the ML job (step 3).
type SplitInfo struct {
	ID        int      `json:"id"`
	SQLWorker int      `json:"sqlWorker"`
	Locations []string `json:"locations"`
}

// Target is one matched ML worker endpoint for a SQL worker (steps 5-6).
type Target struct {
	Split  int    `json:"split"`
	Listen string `json:"listen"` // real TCP address the ML reader accepts on
	Addr   string `json:"addr"`   // simulated node address, for cost charging

	// Epoch is the coordinator-assigned registration generation for the
	// split: bumped on every register_ml, echoed by the reader in the data
	// connection's resume handshake. A sender holding target info from an
	// older epoch detects the mismatch and refreshes via get_target instead
	// of resuming against a re-executed reader's reset offsets.
	Epoch uint32 `json:"epoch,omitempty"`
}

// message is the coordinator wire protocol (JSON lines).
type message struct {
	Type string `json:"type"`

	// register_sql
	Job        string   `json:"job,omitempty"`
	Worker     int      `json:"worker,omitempty"`
	NumWorkers int      `json:"numWorkers,omitempty"`
	Addr       string   `json:"addr,omitempty"`
	Schema     string   `json:"schema,omitempty"`
	Command    string   `json:"command,omitempty"`
	Args       []string `json:"args,omitempty"`
	K          int      `json:"k,omitempty"`

	// register_ml / get_target
	Split  int    `json:"split,omitempty"`
	Listen string `json:"listen,omitempty"`

	// Epoch carries the coordinator-assigned registration generation in
	// register_ml replies (see Target.Epoch).
	Epoch uint32 `json:"epoch,omitempty"`

	// Proto is the wire-format version the registering peer supports
	// (row.WireProtoRow or row.WireProtoBlock; absent means the pre-block
	// v1 protocol). In the matches reply it carries the job's negotiated
	// version: the minimum over every registered sender and reader.
	Proto int `json:"proto,omitempty"`

	// splits / matches replies
	Splits  []SplitInfo `json:"splits,omitempty"`
	Targets []Target    `json:"targets,omitempty"`
	Error   string      `json:"error,omitempty"`
}

// jobState tracks one transfer session.
type jobState struct {
	spec     JobSpec
	launched bool

	// proto is the job's negotiated wire-format version: the minimum
	// advertised across every register_sql and register_ml seen so far
	// (0 until the first registration; a peer that sends no version is a
	// pre-block v1 speaker and pins the job to per-row frames).
	proto int

	// sqlWaiters[w] is the connection a registered SQL worker w is parked
	// on, awaiting its matches message.
	sqlWaiters map[int]*json.Encoder
	sqlAddrs   map[int]string

	// mlRegs[split] is the latest ML registration for the split
	// (last-writer-wins: stale listeners fail the sender's dial and
	// trigger another restart round).
	mlRegs map[int]Target

	// mlEpochs[split] counts register_ml calls for the split; the current
	// value is the live epoch, older values are fenced.
	mlEpochs map[int]uint32

	// dispatched[w] reports whether worker w's current wait got matches.
	dispatched map[int]bool

	// sqlConns[w] is the parked connection behind sqlWaiters[w], kept so
	// lease expiry can sever a hung worker, and lastBeat[w] is when the
	// worker last registered or heartbeat.
	sqlConns map[int]net.Conn
	lastBeat map[int]time.Time

	// restarts counts §6 group restarts: register_sql messages arriving
	// after the job launched. Per-connection reconnects (the sender's
	// backoff + spool-resume path) do not pass through here, which is what
	// lets tests assert a single reset was absorbed without a restart.
	restarts int

	// expired counts leases the coordinator revoked from hung workers.
	expired int
}

// Coordinator is the long-standing matchmaking service.
type Coordinator struct {
	launcher Launcher

	// LeaseDuration, when positive, arms hung-worker detection: each SQL
	// registration grants a lease renewed by heartbeat messages on the
	// parked connection, and a worker whose lease lapses has that
	// connection severed — so a sender that is hung (not merely
	// disconnected) is forced onto its failure path instead of wedging the
	// job forever. Must be set before Start. Zero disables leases.
	LeaseDuration time.Duration

	mu   sync.Mutex
	jobs map[string]*jobState

	ln        net.Listener
	wg        sync.WaitGroup
	closed    bool
	leaseStop chan struct{}

	// Logf, when set, receives protocol trace lines (tests, CLI verbose).
	Logf func(format string, args ...any)
}

// NewCoordinator returns an unstarted coordinator. launcher may be nil when
// ML jobs are started externally (e.g. by the benchmark harness itself).
func NewCoordinator(launcher Launcher) *Coordinator {
	return &Coordinator{launcher: launcher, jobs: make(map[string]*jobState)}
}

// Start begins listening on addr ("127.0.0.1:0" for an ephemeral port) and
// returns the bound address.
func (c *Coordinator) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("stream: coordinator listen: %w", err)
	}
	c.ln = ln
	c.wg.Add(1)
	go c.acceptLoop()
	if c.LeaseDuration > 0 {
		c.leaseStop = make(chan struct{})
		c.wg.Add(1)
		go c.leaseLoop()
	}
	return ln.Addr().String(), nil
}

// Stop shuts the coordinator down and waits for its connections to finish
// their current message.
func (c *Coordinator) Stop() {
	c.mu.Lock()
	wasClosed := c.closed
	c.closed = true
	// Sever parked registration connections: their handlers block reading
	// heartbeats until the peer closes, and a worker that never will (hung,
	// or a test driving the protocol by hand) must not wedge shutdown.
	var parked []net.Conn
	for _, js := range c.jobs {
		for _, conn := range js.sqlConns {
			//lint:allow maporder teardown set: every parked connection is closed, so order never escapes
			parked = append(parked, conn)
		}
	}
	c.mu.Unlock()
	if !wasClosed && c.leaseStop != nil {
		close(c.leaseStop)
	}
	for _, conn := range parked {
		//lint:allow errdiscard shutdown teardown; the close is the signal and the peer may already be gone
		conn.Close()
	}
	if c.ln != nil {
		if err := c.ln.Close(); err != nil {
			c.logf("coordinator: listener close: %v", err)
		}
	}
	c.wg.Wait()
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// Restarts reports how many §6 group restarts the job has gone through:
// register_sql messages seen after launch. Per-connection reconnects
// absorbed by the sender's backoff + spool-resume path never reach this
// counter — the chaos tests assert exactly that.
func (c *Coordinator) Restarts(job string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if js, ok := c.jobs[job]; ok {
		return js.restarts
	}
	return 0
}

// TotalRestarts sums Restarts over every job the coordinator has seen.
func (c *Coordinator) TotalRestarts() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, js := range c.jobs {
		n += js.restarts
	}
	return n
}

// ExpiredLeases reports how many worker leases the coordinator revoked for
// the job.
func (c *Coordinator) ExpiredLeases(job string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if js, ok := c.jobs[job]; ok {
		return js.expired
	}
	return 0
}

// leaseLoop periodically revokes leases of workers that stopped renewing.
func (c *Coordinator) leaseLoop() {
	defer c.wg.Done()
	tick := time.NewTicker(c.LeaseDuration / 2)
	defer tick.Stop()
	for {
		select {
		case <-c.leaseStop:
			return
		case <-tick.C:
			c.expireLeases(time.Now())
		}
	}
}

// expireLeases severs the parked connection of every worker whose lease
// lapsed before now. Closing the connection is the fence: the hung sender's
// next coordinator interaction fails, pushing it onto its restart path, and
// a fresh register_sql re-admits it with a new lease.
func (c *Coordinator) expireLeases(now time.Time) {
	var victims []net.Conn
	c.mu.Lock()
	for job, js := range c.jobs {
		for w, conn := range js.sqlConns {
			if now.Sub(js.lastBeat[w]) <= c.LeaseDuration {
				continue
			}
			delete(js.sqlConns, w)
			delete(js.sqlWaiters, w)
			js.expired++
			//lint:allow maporder fencing set: every expired connection is closed, so order never escapes
			victims = append(victims, conn)
			c.logf("lease expired for sql worker %d of job %s", w, job)
		}
	}
	c.mu.Unlock()
	for _, conn := range victims {
		//lint:allow errdiscard fencing a hung worker; the close itself is the signal and the peer may already be gone
		conn.Close()
	}
}

func (c *Coordinator) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.handle(conn)
		}()
	}
}

// handle serves one connection: a single request message, with the
// register_sql case parking the connection until matches are dispatched.
func (c *Coordinator) handle(conn net.Conn) {
	//lint:allow errdiscard per-connection teardown in the accept loop; the request outcome was already sent (or the peer is gone)
	defer conn.Close()
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	var msg message
	if err := dec.Decode(&msg); err != nil {
		return
	}
	switch msg.Type {
	case "register_sql":
		c.handleRegisterSQL(&msg, conn, enc, dec)
	case "get_splits":
		c.handleGetSplits(&msg, enc)
	case "register_ml":
		c.handleRegisterML(&msg, enc)
	case "get_target":
		c.handleGetTarget(&msg, enc)
	default:
		c.reply(enc, message{Type: "error", Error: "unknown message " + msg.Type})
	}
}

// reply encodes one response message. A failed write is logged, not
// dropped: the peer's own read loop surfaces the broken connection, but a
// silently vanished reply would otherwise be invisible when diagnosing a
// wedged transfer.
func (c *Coordinator) reply(enc *json.Encoder, msg message) {
	if err := enc.Encode(msg); err != nil {
		log.Printf("stream: coordinator: reply %q failed: %v", msg.Type, err)
	}
}

func (c *Coordinator) job(name string) *jobState {
	js, ok := c.jobs[name]
	if !ok {
		js = &jobState{
			sqlWaiters: make(map[int]*json.Encoder),
			sqlAddrs:   make(map[int]string),
			mlRegs:     make(map[int]Target),
			mlEpochs:   make(map[int]uint32),
			dispatched: make(map[int]bool),
			sqlConns:   make(map[int]net.Conn),
			lastBeat:   make(map[int]time.Time),
		}
		c.jobs[name] = js
	}
	return js
}

// handleRegisterSQL implements steps 1-2 and the restart path: the worker
// parks on this connection until its matches arrive. The decoder keeps the
// connection's read side alive so a dropped sender is eventually collected.
func (c *Coordinator) handleRegisterSQL(msg *message, conn net.Conn, enc *json.Encoder, dec *json.Decoder) {
	c.mu.Lock()
	js := c.job(msg.Job)
	isRestart := js.launched
	js.spec = JobSpec{
		Job:        msg.Job,
		Command:    msg.Command,
		Args:       msg.Args,
		NumWorkers: msg.NumWorkers,
		SplitsPer:  max(1, msg.K),
		Schema:     msg.Schema,
	}
	js.sqlWaiters[msg.Worker] = enc
	js.sqlAddrs[msg.Worker] = msg.Addr
	js.dispatched[msg.Worker] = false
	js.sqlConns[msg.Worker] = conn
	js.lastBeat[msg.Worker] = time.Now()
	js.noteProto(msg.Proto)
	if isRestart {
		js.restarts++
		// §6 restart: the worker re-parks for a fresh matches message. ML
		// registrations are kept — failed readers re-register on their own
		// (last-writer-wins replaces their stale listeners), while splits
		// that already completed keep their entries so the sender can skip
		// them and resume at per-split granularity.
		c.logf("restart: sql worker %d of job %s re-registered", msg.Worker, msg.Job)
	}
	allIn := len(js.sqlWaiters) >= js.spec.NumWorkers
	launch := allIn && !js.launched
	if launch {
		js.launched = true
	}
	spec := js.spec
	c.mu.Unlock()

	if launch && c.launcher != nil {
		c.logf("launching ML job %s (%s)", spec.Job, spec.Command)
		//lint:allow lockhygiene launcher is a caller-supplied fire-and-forget hook; the ML job's lifecycle is tracked by its own task layer, not the coordinator
		go c.launcher(spec)
	}
	c.tryDispatch(msg.Job, msg.Worker)

	// Park until the connection drops (the sender closes it after it has
	// received its matches and finished, or on its own failure path).
	// Heartbeat messages arriving on the parked connection renew the
	// worker's lease; everything else is discarded.
	var parked message
	for dec.Decode(&parked) == nil {
		if parked.Type != "heartbeat" {
			continue
		}
		c.mu.Lock()
		if js, ok := c.jobs[parked.Job]; ok {
			js.lastBeat[parked.Worker] = time.Now()
		}
		c.mu.Unlock()
	}

	// Unpark: forget the connection unless a newer registration (restart)
	// already replaced it.
	c.mu.Lock()
	if js, ok := c.jobs[msg.Job]; ok && js.sqlConns[msg.Worker] == conn {
		delete(js.sqlConns, msg.Worker)
	}
	c.mu.Unlock()
}

// noteProto folds one peer's advertised wire-format version into the
// job's negotiated minimum. Callers hold c.mu.
func (js *jobState) noteProto(p int) {
	if p <= 0 {
		p = row.WireProtoRow // pre-versioning peer
	}
	if js.proto == 0 || p < js.proto {
		js.proto = p
	}
}

// handleGetSplits implements step 3: it answers once all SQL workers have
// registered, so the split list and schema are complete.
func (c *Coordinator) handleGetSplits(msg *message, enc *json.Encoder) {
	js, ok := c.waitForRegistration(msg.Job)
	if !ok {
		c.reply(enc, message{Type: "error", Error: "job " + msg.Job + " never registered"})
		return
	}
	c.mu.Lock()
	n := js.spec.NumWorkers
	k := js.spec.SplitsPer
	splits := make([]SplitInfo, 0, n*k)
	for w := 0; w < n; w++ {
		for i := 0; i < k; i++ {
			splits = append(splits, SplitInfo{
				ID:        w*k + i,
				SQLWorker: w,
				Locations: []string{js.sqlAddrs[w]},
			})
		}
	}
	schema := js.spec.Schema
	c.mu.Unlock()
	c.reply(enc, message{Type: "splits", Schema: schema, Splits: splits})
}

// waitForRegistration polls for the job's full SQL registration. The
// blocking is bounded: callers are ML-side and only appear after step 2,
// so in practice this returns immediately; the retry loop guards the
// coordinator-restart scenario.
func (c *Coordinator) waitForRegistration(job string) (*jobState, bool) {
	for attempt := 0; attempt < 2000; attempt++ {
		c.mu.Lock()
		js, ok := c.jobs[job]
		ready := ok && len(js.sqlWaiters) >= js.spec.NumWorkers && js.spec.NumWorkers > 0
		closed := c.closed
		c.mu.Unlock()
		if ready {
			return js, true
		}
		if closed {
			return nil, false
		}
		sleepMillis(5)
	}
	return nil, false
}

// handleRegisterML implements step 4; completing a group triggers steps
// 5-6 for that group's SQL worker.
func (c *Coordinator) handleRegisterML(msg *message, enc *json.Encoder) {
	js, ok := c.waitForRegistration(msg.Job)
	if !ok {
		c.reply(enc, message{Type: "error", Error: "job " + msg.Job + " never registered"})
		return
	}
	c.mu.Lock()
	js.mlEpochs[msg.Split]++
	epoch := js.mlEpochs[msg.Split]
	js.mlRegs[msg.Split] = Target{Split: msg.Split, Listen: msg.Listen, Addr: msg.Addr, Epoch: epoch}
	js.noteProto(msg.Proto)
	k := js.spec.SplitsPer
	worker := msg.Split / k
	// A fresh ML registration re-arms dispatch for its group (restart).
	js.dispatched[worker] = false
	c.mu.Unlock()
	c.reply(enc, message{Type: "ok", Epoch: epoch})
	c.tryDispatch(msg.Job, worker)
}

// handleGetTarget serves a sender's mid-stream refresh: the latest
// registration (listener + epoch) for one split, so a per-connection
// reconnect can find a re-executed reader without a group restart. Unlike
// get_splits this does not wait — an unknown split is an error the sender's
// backoff loop absorbs.
func (c *Coordinator) handleGetTarget(msg *message, enc *json.Encoder) {
	c.mu.Lock()
	var t Target
	var found bool
	if js, ok := c.jobs[msg.Job]; ok {
		t, found = js.mlRegs[msg.Split]
	}
	c.mu.Unlock()
	if !found {
		c.reply(enc, message{Type: "error",
			Error: fmt.Sprintf("no ml registration for job %s split %d", msg.Job, msg.Split)})
		return
	}
	c.reply(enc, message{Type: "target", Targets: []Target{t}})
}

// tryDispatch sends the matches message (step 6) to a SQL worker when its
// entire group of ML workers is registered and the worker is parked.
func (c *Coordinator) tryDispatch(job string, worker int) {
	c.mu.Lock()
	js, ok := c.jobs[job]
	if !ok {
		c.mu.Unlock()
		return
	}
	k := js.spec.SplitsPer
	enc := js.sqlWaiters[worker]
	if enc == nil || js.dispatched[worker] {
		c.mu.Unlock()
		return
	}
	targets := make([]Target, 0, k)
	for s := worker * k; s < (worker+1)*k; s++ {
		t, ok := js.mlRegs[s]
		if !ok {
			c.mu.Unlock()
			return
		}
		targets = append(targets, t)
	}
	js.dispatched[worker] = true
	proto := js.proto
	c.mu.Unlock()

	if err := enc.Encode(message{Type: "matches", Targets: targets, Proto: proto}); err != nil {
		log.Printf("stream: coordinator: dispatch to sql worker %d failed: %v", worker, err)
	}
	c.logf("matched sql worker %d of job %s with %d ml workers", worker, job, len(targets))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
