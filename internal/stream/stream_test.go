package stream

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"sqlml/internal/cluster"
	"sqlml/internal/hadoopfmt"
	"sqlml/internal/ml"
	"sqlml/internal/row"
	"sqlml/internal/sqlengine"
	"sqlml/internal/transform"
)

func streamSchema() row.Schema {
	return row.MustSchema(
		row.Column{Name: "id", Type: row.TypeInt},
		row.Column{Name: "x", Type: row.TypeFloat},
		row.Column{Name: "label", Type: row.TypeInt},
	)
}

func genRows(worker, count int) []row.Row {
	rows := make([]row.Row, count)
	for i := range rows {
		id := int64(worker*1_000_000 + i)
		rows[i] = row.Row{row.Int(id), row.Float(float64(i) / 2), row.Int(int64(i % 2))}
	}
	return rows
}

// transferEnv wires a coordinator, n senders, and an ML-side ingestion.
type transferEnv struct {
	topo      *cluster.Topology
	coord     *Coordinator
	coordAddr string
	launched  chan JobSpec
}

func newTransferEnv(t *testing.T) *transferEnv {
	t.Helper()
	env := &transferEnv{
		topo:     cluster.NewTopology(5),
		launched: make(chan JobSpec, 8),
	}
	env.coord = NewCoordinator(func(spec JobSpec) { env.launched <- spec })
	addr, err := env.coord.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(env.coord.Stop)
	env.coordAddr = addr
	return env
}

// runTransfer streams rowsPerWorker rows from n senders and ingests them
// through fmt (already configured with the coordinator address).
func (env *transferEnv) runTransfer(t *testing.T, job string, n, k, rowsPerWorker int, f *InputFormat, cfg SenderConfig) (*ml.Dataset, []*SenderStats) {
	t.Helper()

	type ingestResult struct {
		d   *ml.Dataset
		err error
	}
	ingestCh := make(chan ingestResult, 1)
	go func() {
		spec := <-env.launched
		if spec.Command != "svm" {
			ingestCh <- ingestResult{err: fmt.Errorf("unexpected command %q", spec.Command)}
			return
		}
		d, err := ml.Ingest(f, ml.IngestOptions{
			LabelCol: "label",
			Nodes:    env.topo.Nodes(),
		})
		ingestCh <- ingestResult{d: d, err: err}
	}()

	stats := make([]*SenderStats, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			stats[w], errs[w] = Send(SendRequest{
				CoordAddr:  env.coordAddr,
				Job:        job,
				Command:    "svm",
				Worker:     w,
				NumWorkers: n,
				K:          k,
				Node:       env.topo.Node(w + 1),
				Topo:       env.topo,
				Schema:     streamSchema(),
				Rows:       genRows(w, rowsPerWorker),
				Config:     cfg,
			})
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("sender %d: %v", w, err)
		}
	}
	res := <-ingestCh
	if res.err != nil {
		t.Fatalf("ingest: %v", res.err)
	}
	return res.d, stats
}

// checkExactlyOnce verifies every expected id arrived exactly once (the id
// rides in feature position 0).
func checkExactlyOnce(t *testing.T, d *ml.Dataset, n, rowsPerWorker int) {
	t.Helper()
	seen := make(map[int64]int)
	for _, p := range d.All() {
		seen[int64(p.Features[0])]++
	}
	if len(seen) != n*rowsPerWorker {
		t.Fatalf("distinct rows = %d, want %d", len(seen), n*rowsPerWorker)
	}
	for w := 0; w < n; w++ {
		for i := 0; i < rowsPerWorker; i++ {
			id := int64(w*1_000_000 + i)
			if seen[id] != 1 {
				t.Fatalf("row %d delivered %d times", id, seen[id])
			}
		}
	}
}

func TestTransferEndToEnd(t *testing.T) {
	env := newTransferEnv(t)
	f := &InputFormat{CoordAddr: env.coordAddr, Job: "j1"}
	d, stats := env.runTransfer(t, "j1", 4, 1, 200, f, DefaultSenderConfig())
	checkExactlyOnce(t, d, 4, 200)
	if len(d.Parts) != 4 {
		t.Errorf("partitions = %d, want 4 (one per split)", len(d.Parts))
	}
	var totalSent int64
	for _, s := range stats {
		totalSent += s.RowsSent
		if s.Restarts != 0 {
			t.Errorf("unexpected restarts: %+v", s)
		}
		// Block framing coalesces rows into multi-row frames.
		if s.FramesSent == 0 || s.FramesSent >= s.RowsSent {
			t.Errorf("block framing inactive: frames=%d rows=%d", s.FramesSent, s.RowsSent)
		}
	}
	if totalSent != 800 {
		t.Errorf("rows sent = %d", totalSent)
	}
}

func TestTransferSplitFactorK(t *testing.T) {
	env := newTransferEnv(t)
	f := &InputFormat{CoordAddr: env.coordAddr, Job: "jk"}
	d, _ := env.runTransfer(t, "jk", 2, 3, 99, f, DefaultSenderConfig())
	checkExactlyOnce(t, d, 2, 99)
	if len(d.Parts) != 6 {
		t.Errorf("partitions = %d, want 6 (m = n*k = 2*3)", len(d.Parts))
	}
}

func TestSplitsCarrySQLWorkerLocality(t *testing.T) {
	env := newTransferEnv(t)
	f := &InputFormat{CoordAddr: env.coordAddr, Job: "jloc"}
	go func() {
		<-env.launched
		splits, err := f.Splits(0)
		if err != nil {
			t.Error(err)
			return
		}
		for i, sp := range splits {
			want := env.topo.Node(i/2 + 1).Addr
			locs := sp.Locations()
			if len(locs) != 1 || locs[0] != want {
				t.Errorf("split %d locations = %v, want [%s]", i, locs, want)
			}
			// Consume to unblock the senders.
			rr, err := f.Open(sp, env.topo.Node(i/2+1))
			if err != nil {
				t.Error(err)
				return
			}
			go func() {
				for {
					_, ok, err := rr.Next()
					if err != nil || !ok {
						return
					}
				}
			}()
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if _, err := Send(SendRequest{
				CoordAddr: env.coordAddr, Job: "jloc", Command: "svm",
				Worker: w, NumWorkers: 2, K: 2,
				Node: env.topo.Node(w + 1), Topo: env.topo,
				Schema: streamSchema(), Rows: genRows(w, 10),
				Config: DefaultSenderConfig(),
			}); err != nil {
				t.Errorf("sender %d: %v", w, err)
			}
		}(w)
	}
	wg.Wait()
}

func TestSchemaPropagatedThroughCoordinator(t *testing.T) {
	env := newTransferEnv(t)
	f := &InputFormat{CoordAddr: env.coordAddr, Job: "jschema"}
	d, _ := env.runTransfer(t, "jschema", 1, 1, 10, f, DefaultSenderConfig())
	if d.NumFeatures != 2 {
		t.Errorf("features = %d (schema did not arrive)", d.NumFeatures)
	}
	s, err := f.Schema()
	if err != nil || !s.Equal(streamSchema()) {
		t.Errorf("schema = %v, %v", s, err)
	}
}

func TestSlowConsumerSpillsToDisk(t *testing.T) {
	env := newTransferEnv(t)
	f := &InputFormat{
		CoordAddr:    env.coordAddr,
		Job:          "jspill",
		ConsumeDelay: 50 * time.Microsecond,
	}
	cfg := DefaultSenderConfig()
	cfg.QueueFrames = 2                   // tiny in-flight window
	cfg.BlockRows = 16                    // many small blocks, so the queue can fill
	cfg.SpillWait = 20 * time.Microsecond // far below the consumer's pace
	cfg.SpillDir = t.TempDir()
	// Enough volume to saturate the kernel socket buffers, so backpressure
	// reaches the sender's queue and the spill path engages.
	d, stats := env.runTransfer(t, "jspill", 2, 1, 1500, f, cfg)
	// checkExactlyOnce validates content, so spilled blocks round-tripped
	// through the disk file intact.
	checkExactlyOnce(t, d, 2, 1500)
	var spilled int64
	for _, s := range stats {
		spilled += s.SpilledBytes
		if s.FramesSent == 0 || s.FramesSent >= s.RowsSent {
			t.Errorf("spill path lost block framing: frames=%d rows=%d", s.FramesSent, s.RowsSent)
		}
	}
	if spilled == 0 {
		t.Error("slow consumer did not trigger spilling")
	}
}

// TestMLWorkerFailureRecoversExactlyOnce: an injected ML worker crash is
// absorbed by partial-failure recovery — the crashed task re-executes with
// a fresh listener and epoch, the sender's per-target reconnect finds it
// via get_target and resends that slot from the spool, and no §6 group
// restart runs.
func TestMLWorkerFailureRecoversExactlyOnce(t *testing.T) {
	env := newTransferEnv(t)
	var once sync.Once
	fail := false
	f := &InputFormat{
		CoordAddr: env.coordAddr,
		Job:       "jfail",
		Inject: func(split, rowsRead int) bool {
			if split == 1 && rowsRead == 50 {
				failed := false
				once.Do(func() { failed = true })
				if failed {
					fail = true
					return true
				}
			}
			return false
		},
		AcceptTimeout: 5 * time.Second,
	}
	cfg := DefaultSenderConfig()
	cfg.MaxRestarts = 8
	cfg.BlockRows = 64 // several blocks per slot, so replay spans frames
	d, stats := env.runTransfer(t, "jfail", 2, 2, 300, f, cfg)
	if !fail {
		t.Fatal("injection never fired")
	}
	checkExactlyOnce(t, d, 2, 300)
	restarts, reconnects := 0, 0
	for _, s := range stats {
		restarts += s.Restarts
		reconnects += s.Reconnects
	}
	if reconnects == 0 {
		t.Error("no per-target reconnects recorded despite injected failure")
	}
	if restarts != 0 {
		t.Errorf("crash escalated to %d group restarts; want per-target recovery only", restarts)
	}
	if got := env.coord.Restarts("jfail"); got != 0 {
		t.Errorf("coordinator counted %d group restarts, want 0", got)
	}
}

// TestMLWorkerFailureEscalatesToRestart: with per-target recovery disabled
// the same crash falls back to the paper's §6 group restart, still
// delivering exactly-once.
func TestMLWorkerFailureEscalatesToRestart(t *testing.T) {
	env := newTransferEnv(t)
	var once sync.Once
	f := &InputFormat{
		CoordAddr: env.coordAddr,
		Job:       "jesc",
		Inject: func(split, rowsRead int) bool {
			fired := false
			if split == 1 && rowsRead == 50 {
				once.Do(func() { fired = true })
			}
			return fired
		},
		AcceptTimeout: 5 * time.Second,
	}
	cfg := DefaultSenderConfig()
	cfg.MaxRestarts = 8
	cfg.ReconnectBudget = -1 // §6 original behavior: every failure escalates
	cfg.BlockRows = 64
	d, stats := env.runTransfer(t, "jesc", 2, 2, 300, f, cfg)
	checkExactlyOnce(t, d, 2, 300)
	restarts := 0
	for _, s := range stats {
		restarts += s.Restarts
	}
	if restarts == 0 {
		t.Error("no sender restarts recorded despite injected failure")
	}
	if got := env.coord.Restarts("jesc"); got == 0 {
		t.Error("coordinator restart counter never moved")
	}
}

func TestSenderFailsWithoutMLJob(t *testing.T) {
	env := newTransferEnv(t)
	cfg := DefaultSenderConfig()
	cfg.DialTimeout = 300 * time.Millisecond
	cfg.MaxRestarts = 1
	_, err := Send(SendRequest{
		CoordAddr: env.coordAddr, Job: "jnoml", Command: "svm",
		Worker: 0, NumWorkers: 1, K: 1,
		Node: env.topo.Node(1), Topo: env.topo,
		Schema: streamSchema(), Rows: genRows(0, 5),
		Config: cfg,
	})
	if err == nil {
		t.Error("send without ML workers should time out")
	}
}

// TestEngineUDFStreamsQueryResult is the full In-SQL integration: the
// stream_send table UDF pushes a query result from the SQL engine into the
// ML engine, never touching the DFS.
func TestEngineUDFStreamsQueryResult(t *testing.T) {
	topo := cluster.NewTopology(5)
	eng, err := sqlengine.New(topo, nil, sqlengine.Config{HeadNodeID: 0, WorkerNodeIDs: []int{1, 2, 3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if err := transform.RegisterUDFs(eng); err != nil {
		t.Fatal(err)
	}
	if err := RegisterSenderUDF(eng, DefaultSenderConfig()); err != nil {
		t.Fatal(err)
	}
	schema := row.MustSchema(
		row.Column{Name: "age", Type: row.TypeInt},
		row.Column{Name: "amount", Type: row.TypeFloat},
		row.Column{Name: "abandoned", Type: row.TypeInt},
	)
	var rows []row.Row
	for i := 0; i < 120; i++ {
		rows = append(rows, row.Row{row.Int(int64(20 + i%50)), row.Float(float64(i)), row.Int(int64(1 + i%2))})
	}
	if err := eng.LoadTable("prepared", schema, rows); err != nil {
		t.Fatal(err)
	}

	type mlResult struct {
		d   *ml.Dataset
		err error
	}
	resCh := make(chan mlResult, 1)
	coord := NewCoordinator(nil)
	addr, err := coord.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Stop()
	coord.launcher = func(spec JobSpec) {
		f := &InputFormat{CoordAddr: addr, Job: spec.Job}
		d, err := ml.Ingest(f, ml.IngestOptions{
			LabelCol:       "abandoned",
			LabelTransform: func(v float64) float64 { return v - 1 },
			Nodes:          topo.Nodes(),
		})
		resCh <- mlResult{d, err}
	}

	res, err := eng.Query(fmt.Sprintf(
		"SELECT * FROM TABLE(stream_send(prepared, '%s', 'udfjob', 'svm', 2))", addr))
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 4 {
		t.Errorf("sender summary rows = %d, want 4 (one per SQL worker)", res.NumRows())
	}
	var sent, frames int64
	for _, r := range res.Rows() {
		sent += r[1].AsInt()
		frames += r[5].AsInt() // frames_sent
	}
	if sent != 120 {
		t.Errorf("rows sent = %d, want 120", sent)
	}
	if frames == 0 || frames >= sent {
		t.Errorf("frames_sent = %d (rows_sent %d); UDF schema should surface block coalescing", frames, sent)
	}

	mlRes := <-resCh
	if mlRes.err != nil {
		t.Fatal(mlRes.err)
	}
	if mlRes.d.NumRows() != 120 || mlRes.d.NumFeatures != 2 {
		t.Errorf("ingested %d rows, %d features", mlRes.d.NumRows(), mlRes.d.NumFeatures)
	}
	if len(mlRes.d.Parts) != 8 {
		t.Errorf("ML partitions = %d, want 8 (4 workers x k=2)", len(mlRes.d.Parts))
	}
	// The stream is good enough to train on.
	model, err := ml.TrainSVMWithSGD(mlRes.d, ml.DefaultSGD())
	if err != nil {
		t.Fatal(err)
	}
	if model == nil {
		t.Fatal("nil model")
	}
}

func TestMessageLogProduceConsume(t *testing.T) {
	l := NewMessageLog()
	if err := l.CreateTopic("t", 2, streamSchema()); err != nil {
		t.Fatal(err)
	}
	if err := l.CreateTopic("t", 2, streamSchema()); err == nil {
		t.Error("duplicate topic accepted")
	}
	for w := 0; w < 2; w++ {
		for _, r := range genRows(w, 50) {
			if err := l.Append("t", w, r); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Seal("t", w); err != nil {
			t.Fatal(err)
		}
	}
	f := &LogFormat{Log: l, Topic: "t"}
	got, err := hadoopfmt.ReadAll(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Errorf("log rows = %d", len(got))
	}
	if err := l.Append("t", 0, genRows(0, 1)[0]); err == nil {
		t.Error("append to sealed partition accepted")
	}
}

func TestMessageLogBlocksUntilSealed(t *testing.T) {
	l := NewMessageLog()
	if err := l.CreateTopic("b", 1, streamSchema()); err != nil {
		t.Fatal(err)
	}
	done := make(chan int, 1)
	go func() {
		f := &LogFormat{Log: l, Topic: "b"}
		rows, err := hadoopfmt.ReadAll(f, nil)
		if err != nil {
			done <- -1
			return
		}
		done <- len(rows)
	}()
	for _, r := range genRows(0, 10) {
		l.Append("b", 0, r)
		time.Sleep(time.Millisecond)
	}
	select {
	case n := <-done:
		t.Fatalf("reader finished before seal with %d rows", n)
	default:
	}
	l.Seal("b", 0)
	select {
	case n := <-done:
		if n != 10 {
			t.Errorf("rows = %d", n)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("reader did not finish after seal")
	}
}

func TestMessageLogReplayFromCommitted(t *testing.T) {
	l := NewMessageLog()
	if err := l.CreateTopic("r", 1, streamSchema()); err != nil {
		t.Fatal(err)
	}
	rows := genRows(0, 20)
	for _, r := range rows {
		l.Append("r", 0, r)
	}
	l.Seal("r", 0)

	// First consumer reads 8 rows, then "crashes".
	f := &LogFormat{Log: l, Topic: "r"}
	splits, err := f.Splits(0)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := f.Open(splits[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, ok, err := rr.Next(); !ok || err != nil {
			t.Fatal("short read")
		}
	}
	if err := rr.Close(); err != nil {
		t.Fatalf("close reader: %v", err)
	}
	if off, _ := l.Committed("r", 0); off != 8 {
		t.Fatalf("committed = %d", off)
	}

	// Replacement consumer resumes from the committed offset.
	f2 := &LogFormat{Log: l, Topic: "r", StartFromCommitted: true}
	got, err := hadoopfmt.ReadAll(f2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 12 {
		t.Fatalf("replayed rows = %d, want 12", len(got))
	}
	if got[0][0].AsInt() != rows[8][0].AsInt() {
		t.Errorf("replay started at %v, want %v", got[0][0], rows[8][0])
	}
}

func TestCoordinatorRejectsUnknownMessage(t *testing.T) {
	env := newTransferEnv(t)
	_ = env
}

// TestCoordinatorCrashRecovery exercises §6's "the coordinator service must
// be resilient itself": the coordinator dies while the SQL workers are
// parked waiting for their matches, losing all matchmaking state. A
// replacement coordinator comes up on the same address (the stable
// endpoint ZooKeeper would provide); the senders' retry loops re-register
// with it, the ML job runs against it, and the transfer completes
// exactly-once.
func TestCoordinatorCrashRecovery(t *testing.T) {
	topo := cluster.NewTopology(3)

	coord1 := NewCoordinator(nil)
	addr, err := coord1.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// The senders start first and park on coordinator 1 awaiting matches.
	cfg := DefaultSenderConfig()
	cfg.MaxRestarts = 25
	cfg.DialTimeout = 5 * time.Second
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_, errs[w] = Send(SendRequest{
				CoordAddr: addr, Job: "jcrash", Command: "svm",
				Worker: w, NumWorkers: 2, K: 1,
				Node: topo.Node(w + 1), Topo: topo,
				Schema: streamSchema(), Rows: genRows(w, 120),
				Config: cfg,
			})
		}(w)
	}

	// Crash coordinator 1 mid-protocol and bring the replacement up on the
	// same address.
	time.Sleep(200 * time.Millisecond)
	coord1.Stop()
	coord2 := NewCoordinator(nil)
	for attempt := 0; ; attempt++ {
		if _, err = coord2.Start(addr); err == nil {
			break
		}
		if attempt > 100 {
			t.Fatalf("could not rebind coordinator address: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	defer coord2.Stop()

	// The ML job only ever talks to the replacement.
	f := &InputFormat{CoordAddr: addr, Job: "jcrash", AcceptTimeout: 2 * time.Second}
	d, err := ml.Ingest(f, ml.IngestOptions{LabelCol: "label", Nodes: topo.Nodes()})
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("sender %d after coordinator failover: %v", w, err)
		}
	}
	checkExactlyOnce(t, d, 2, 120)
}

// TestConcurrentJobsThroughOneCoordinator runs two independent transfers
// through the same long-standing coordinator simultaneously — the service
// is shared infrastructure, not per-pipeline state.
func TestConcurrentJobsThroughOneCoordinator(t *testing.T) {
	env := newTransferEnv(t)
	type out struct {
		d   *ml.Dataset
		err error
	}
	results := make(chan out, 2)
	runJob := func(job string, n, rowsPer int) {
		f := &InputFormat{CoordAddr: env.coordAddr, Job: job}
		go func() {
			d, err := ml.Ingest(f, ml.IngestOptions{LabelCol: "label", Nodes: env.topo.Nodes()})
			results <- out{d, err}
		}()
		var wg sync.WaitGroup
		for w := 0; w < n; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				if _, err := Send(SendRequest{
					CoordAddr: env.coordAddr, Job: job, Command: "svm",
					Worker: w, NumWorkers: n, K: 1,
					Node: env.topo.Node(w + 1), Topo: env.topo,
					Schema: streamSchema(), Rows: genRows(w, rowsPer),
					Config: DefaultSenderConfig(),
				}); err != nil {
					t.Errorf("%s sender %d: %v", job, w, err)
				}
			}(w)
		}
		wg.Wait()
	}
	var jobs sync.WaitGroup
	jobs.Add(2)
	go func() { defer jobs.Done(); runJob("jobA", 2, 150) }()
	go func() { defer jobs.Done(); runJob("jobB", 3, 80) }()
	jobs.Wait()
	total := 0
	for i := 0; i < 2; i++ {
		r := <-results
		if r.err != nil {
			t.Fatal(r.err)
		}
		total += r.d.NumRows()
	}
	if total != 2*150+3*80 {
		t.Errorf("total rows across jobs = %d, want %d", total, 2*150+3*80)
	}
}
