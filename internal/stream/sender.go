package stream

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"time"

	"sqlml/internal/cluster"
	"sqlml/internal/row"
	"sqlml/internal/sqlengine"
)

// SenderConfig tunes the SQL-side streaming sender.
type SenderConfig struct {
	// BufferSize is the per-target send buffer in bytes (the paper's
	// experiments use 4 KB).
	BufferSize int
	// QueueFrames bounds the in-flight frame queue per target; when it is
	// full (a slow consumer), frames spill to a local disk file to keep
	// the producer running — the paper's producer/consumer synchronization.
	// One frame is one block (~BlockRows rows), so the queue bounds
	// O(blocks), not O(rows), of sender memory.
	QueueFrames int
	// BlockRows and BlockBytes bound one block frame: the sender flushes a
	// slot's block when it reaches BlockRows rows or BlockBytes encoded
	// bytes (and at end of stream). They default to the engine's batch
	// granularity (~1024 rows / ~64 KB).
	BlockRows  int
	BlockBytes int
	// Proto pins the wire-format version this sender offers during the
	// coordinator handshake: row.WireProtoRow for one-frame-per-row (what
	// pre-block senders speak), row.WireProtoBlock for multi-row block
	// frames. 0 means latest. The coordinator negotiates the minimum
	// across a job's senders and readers, so mixed-version deployments
	// degrade to v1 instead of breaking.
	Proto int
	// SpillWait is how long a full queue may block the producer before it
	// spills to disk; a fast consumer frees buffer space well within it.
	SpillWait time.Duration
	// SpillDir is where spill files go (defaults to the OS temp dir).
	SpillDir string
	// MaxRestarts bounds §6 restart attempts.
	MaxRestarts int
	// DialTimeout bounds connection establishment to ML workers.
	DialTimeout time.Duration
	// ReconnectBudget bounds per-target reconnect attempts: when a single
	// data connection fails mid-stream, the sender redials that target and
	// resumes from the spill spool (skipping rows the reader already
	// consumed, per the resume handshake) instead of restarting the whole
	// group. Only when the budget is exhausted does the failure escalate to
	// the §6 restart. 0 means the default; negative disables per-target
	// recovery (every failure escalates, the paper's original behavior).
	ReconnectBudget int
	// ReconnectBackoff is the base delay between reconnect attempts; each
	// attempt doubles it (capped) and adds deterministic jitter.
	ReconnectBackoff time.Duration
	// HeartbeatInterval is how often the sender renews its coordinator
	// lease while streaming, so a coordinator with LeaseDuration armed can
	// tell a hung worker from a busy one. 0 means the default; negative
	// disables heartbeats.
	HeartbeatInterval time.Duration
	// Dial, when set, replaces net.DialTimeout for data-channel dials to ML
	// workers — the fault-injection seam. Coordinator control connections
	// always use the real dialer: faulting those would turn every scripted
	// data-channel fault into a registration failure and mask the recovery
	// path under test.
	Dial func(network, addr string, timeout time.Duration) (net.Conn, error)
	// DisableCompression turns off the per-column lightweight encodings of
	// v3 frames: blocks still ship column-major, but every vector is written
	// raw. Compression is on by default; the knob exists for the ablation
	// grid and for debugging wire captures.
	DisableCompression bool
	// DisableReplay turns off the per-slot frame spool that restart
	// attempts resend from. With a streaming input the spool is the only
	// copy of already-consumed rows, so disabling it trades §6 restarts
	// for true O(batch) sender memory (a failed transfer then fails the
	// query).
	DisableReplay bool
}

// DefaultSenderConfig mirrors the paper's settings.
func DefaultSenderConfig() SenderConfig {
	return SenderConfig{
		BufferSize:        4 << 10,
		QueueFrames:       64,
		BlockRows:         row.BlockTargetRows,
		BlockBytes:        row.BlockTargetBytes,
		SpillWait:         5 * time.Millisecond,
		MaxRestarts:       5,
		DialTimeout:       10 * time.Second,
		ReconnectBudget:   4,
		ReconnectBackoff:  10 * time.Millisecond,
		HeartbeatInterval: time.Second,
	}
}

// SenderStats summarises one worker's transfer, and is the output row of
// the sender UDF.
type SenderStats struct {
	Worker       int
	RowsSent     int64
	BytesSent    int64
	SpilledBytes int64
	Restarts     int
	// FramesSent counts wire frames; with block framing it is the number
	// of blocks, so FramesSent ≪ RowsSent is the observable signature of
	// coalescing (FramesSent == RowsSent means the v1 per-row protocol).
	FramesSent int64
	// Reconnects counts per-target reconnections that resumed from the
	// spool without a §6 group restart: Reconnects > 0 with Restarts == 0
	// is the signature of partial-failure recovery.
	Reconnects int
	// RawBytes is what the delivered rows would have cost in the v2 row
	// encoding; WireBytes is what the negotiated frames actually cost.
	// RawBytes/WireBytes is the observable compression ratio — 1.0 on
	// v1/v2 jobs, above 1.0 when v3's per-column encodings bite.
	RawBytes  int64
	WireBytes int64
}

// statsSchema is the sender UDF's output schema.
func statsSchema() row.Schema {
	return row.MustSchema(
		row.Column{Name: "worker", Type: row.TypeInt},
		row.Column{Name: "rows_sent", Type: row.TypeInt},
		row.Column{Name: "bytes_sent", Type: row.TypeInt},
		row.Column{Name: "spilled_bytes", Type: row.TypeInt},
		row.Column{Name: "restarts", Type: row.TypeInt},
		row.Column{Name: "frames_sent", Type: row.TypeInt},
		row.Column{Name: "reconnects", Type: row.TypeInt},
		row.Column{Name: "raw_bytes", Type: row.TypeInt},
		row.Column{Name: "wire_bytes", Type: row.TypeInt},
	)
}

// RegisterSenderUDF installs the parallel table UDF "stream_send" into the
// engine. Invoked as
//
//	SELECT * FROM TABLE(stream_send(T, 'coord-addr', 'job', 'command', k))
//
// each SQL worker registers with the coordinator, waits for its matched ML
// workers, and streams its local partition to them round-robin. The UDF
// emits one summary row per worker.
func RegisterSenderUDF(e *sqlengine.Engine, cfg SenderConfig) error {
	return e.Registry().RegisterTable(&sqlengine.TableUDF{
		Name:         "stream_send",
		PerPartition: true,
		OutSchema: func(in row.Schema, args []row.Value) (row.Schema, error) {
			if len(args) < 3 || len(args) > 4 {
				return row.Schema{}, fmt.Errorf("usage: stream_send(T, 'coord', 'job', 'command'[, k])")
			}
			if in.Len() == 0 {
				return row.Schema{}, fmt.Errorf("stream_send requires a table argument")
			}
			return statsSchema(), nil
		},
		Fn: func(ctx *sqlengine.UDFContext, in sqlengine.Iterator, args []row.Value, emit func(row.Row) error) error {
			coordAddr := args[0].AsString()
			job := args[1].AsString()
			command := args[2].AsString()
			k := 1
			if len(args) == 4 {
				k = int(args[3].AsInt())
			}
			// The input iterator is handed straight to the sender: rows go
			// onto the wire as the upstream pipeline produces them, so the
			// query, transformation, and transfer overlap (the paper's
			// Figure 2 insql+stream path).
			stats, err := Send(SendRequest{
				CoordAddr:  coordAddr,
				Job:        job,
				Command:    command,
				Worker:     ctx.Partition,
				NumWorkers: ctx.NumPartitions,
				K:          k,
				Node:       ctx.Node,
				Cost:       ctx.Engine.Cost(),
				Topo:       ctx.Engine.Topology(),
				Schema:     ctx.InSchema,
				Input:      in,
				Config:     cfg,
			})
			if err != nil {
				return err
			}
			return emit(row.Row{
				row.Int(int64(stats.Worker)),
				row.Int(stats.RowsSent),
				row.Int(stats.BytesSent),
				row.Int(stats.SpilledBytes),
				row.Int(int64(stats.Restarts)),
				row.Int(stats.FramesSent),
				row.Int(int64(stats.Reconnects)),
				row.Int(stats.RawBytes),
				row.Int(stats.WireBytes),
			})
		},
	})
}

// SendRequest carries everything one SQL worker needs to stream its
// partition. The partition arrives either as a streaming Input iterator
// (rows hit the wire as they are produced) or as pre-materialized Rows;
// Input wins when both are set.
type SendRequest struct {
	CoordAddr  string
	Job        string
	Command    string
	Args       []string
	Worker     int
	NumWorkers int
	K          int
	Node       *cluster.Node
	Topo       *cluster.Topology
	Cost       *cluster.CostModel
	Schema     row.Schema
	Input      sqlengine.Iterator
	Rows       []row.Row
	Config     SenderConfig
}

// spooledBlock is one §6 replay spool entry: an encoded wire frame (a
// block, or a single v1 row frame) plus its row count and v2-equivalent
// raw size, so retry attempts resend and account it without re-decoding.
type spooledBlock struct {
	frame []byte
	rows  int64
	raw   int64
}

// sendSource tracks where an attempt's rows come from. The first attempt
// consumes the streaming input, encoding rows into block frames once and
// (unless replay is disabled) spooling the encoded blocks per slot; later
// attempts resend the unconfirmed slots from the spool — one spool entry
// and one resend enqueue per block, not per row. The input is consumed
// exactly once even when targets fail mid-stream.
type sendSource struct {
	input  sqlengine.Iterator // nil once consumed
	spool  [][]spooledBlock   // [slot][block]; nil until k is known
	replay bool
}

// fatalError marks a failure no restart can recover from (the streaming
// input itself failed, or it was consumed with replay disabled).
type fatalError struct{ err error }

func (f *fatalError) Error() string { return f.err.Error() }
func (f *fatalError) Unwrap() error { return f.err }

// Send runs the full sender protocol for one SQL worker: register (step 1),
// await matches (step 6), connect (step 7), stream round-robin (step 8).
//
// Failure handling refines §6's restart into per-split resume: rows are
// assigned to split slots deterministically (row i → slot i mod k), each
// slot's delivery is confirmed by an end-of-stream ACK, and a retry attempt
// resends only the unconfirmed slots (from the encoded-frame spool) —
// failed ML tasks re-register fresh listeners, completed ones are never
// re-run, and every row is delivered exactly once.
func Send(req SendRequest) (*SenderStats, error) {
	cfg := req.Config
	if cfg.BufferSize <= 0 {
		cfg.BufferSize = DefaultSenderConfig().BufferSize
	}
	if cfg.QueueFrames <= 0 {
		cfg.QueueFrames = DefaultSenderConfig().QueueFrames
	}
	if cfg.SpillWait <= 0 {
		cfg.SpillWait = DefaultSenderConfig().SpillWait
	}
	if cfg.MaxRestarts <= 0 {
		cfg.MaxRestarts = DefaultSenderConfig().MaxRestarts
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = DefaultSenderConfig().DialTimeout
	}
	if cfg.BlockRows <= 0 {
		cfg.BlockRows = DefaultSenderConfig().BlockRows
	}
	if cfg.BlockBytes <= 0 {
		cfg.BlockBytes = DefaultSenderConfig().BlockBytes
	}
	if cfg.Proto <= 0 {
		cfg.Proto = row.WireProtoLatest
	}
	if cfg.ReconnectBudget == 0 {
		cfg.ReconnectBudget = DefaultSenderConfig().ReconnectBudget
	}
	if cfg.ReconnectBackoff <= 0 {
		cfg.ReconnectBackoff = DefaultSenderConfig().ReconnectBackoff
	}
	if cfg.HeartbeatInterval == 0 {
		cfg.HeartbeatInterval = DefaultSenderConfig().HeartbeatInterval
	}
	src := &sendSource{input: req.Input, replay: !cfg.DisableReplay}
	if src.input == nil {
		src.input = &sqlengine.SliceIterator{Rows: req.Rows}
	}
	maxRestarts := cfg.MaxRestarts
	if cfg.DisableReplay {
		maxRestarts = 0
	}
	stats := &SenderStats{Worker: req.Worker}
	completed := make(map[int]bool)
	var lastErr error
	for attempt := 0; attempt <= maxRestarts; attempt++ {
		if attempt > 0 {
			stats.Restarts++
			// Give failed ML tasks a moment to re-execute and re-register.
			sleepMillis(20 * attempt)
		}
		done, err := sendOnce(req, cfg, stats, completed, src)
		if done {
			return stats, nil
		}
		lastErr = err
		var fe *fatalError
		if errors.As(err, &fe) {
			break
		}
	}
	return nil, fmt.Errorf("stream: worker %d: transfer failed after %d restarts: %w", req.Worker, stats.Restarts, lastErr)
}

// sendOnce performs one attempt: it (re-)registers, awaits matches, and
// streams the slots not yet confirmed. It reports done when every slot has
// been delivered and acknowledged.
func sendOnce(req SendRequest, cfg SenderConfig, stats *SenderStats, completed map[int]bool, src *sendSource) (done bool, err error) {
	coord, err := net.DialTimeout("tcp", req.CoordAddr, cfg.DialTimeout)
	if err != nil {
		return false, fmt.Errorf("stream: dial coordinator: %w", err)
	}
	//lint:allow errdiscard control-connection teardown is best-effort; delivery is confirmed by the data-channel ACK, not this Close
	defer coord.Close()
	enc := json.NewEncoder(coord)
	dec := json.NewDecoder(bufio.NewReader(coord))
	if err := enc.Encode(message{
		Type:       "register_sql",
		Job:        req.Job,
		Worker:     req.Worker,
		NumWorkers: req.NumWorkers,
		Addr:       nodeAddr(req.Node),
		Schema:     req.Schema.String(),
		Command:    req.Command,
		Args:       req.Args,
		K:          req.K,
		Proto:      cfg.Proto,
	}); err != nil {
		return false, fmt.Errorf("stream: register: %w", err)
	}
	if err := coord.SetReadDeadline(time.Now().Add(cfg.DialTimeout)); err != nil {
		return false, fmt.Errorf("stream: set coordinator deadline: %w", err)
	}
	var reply message
	if err := dec.Decode(&reply); err != nil {
		return false, fmt.Errorf("stream: awaiting matches: %w", err)
	}
	if reply.Type != "matches" {
		return false, fmt.Errorf("stream: unexpected coordinator reply %q: %s", reply.Type, reply.Error)
	}

	// Renew the coordinator lease while this attempt streams: the parked
	// registration connection doubles as the heartbeat channel, so a
	// coordinator with leases armed can tell this worker is alive even when
	// a stalled data connection keeps it silent for a long time. Nothing
	// else writes to coord once the matches arrived.
	if cfg.HeartbeatInterval > 0 {
		hbStop := make(chan struct{})
		hbDone := make(chan struct{})
		go func() {
			defer close(hbDone)
			tick := time.NewTicker(cfg.HeartbeatInterval)
			defer tick.Stop()
			for {
				select {
				case <-hbStop:
					return
				case <-tick.C:
					if err := enc.Encode(message{Type: "heartbeat", Job: req.Job, Worker: req.Worker}); err != nil {
						return
					}
				}
			}
		}()
		defer func() { close(hbStop); <-hbDone }()
	}
	targets := reply.Targets
	if len(targets) == 0 {
		return false, fmt.Errorf("stream: empty match set")
	}
	// The coordinator replies with the job's negotiated wire protocol: the
	// minimum across every registered sender and reader, so one v1 peer
	// pins the whole job to per-row frames.
	proto := reply.Proto
	if proto <= 0 {
		proto = row.WireProtoRow
	}
	if proto > cfg.Proto {
		proto = cfg.Proto
	}

	// Slot j of this worker is split worker*k + j; rows are assigned
	// round-robin by slot so the mapping is stable across attempts.
	k := len(targets)
	bySplit := make(map[int]Target, k)
	for _, t := range targets {
		bySplit[t.Split] = t
	}
	if src.input != nil && src.replay && src.spool == nil {
		src.spool = make([][]spooledBlock, k)
	}

	// Step 7: connect to the ML workers of the still-incomplete slots. The
	// resume handshake on each connection reports how many rows the reader
	// already consumed: 0 from a fresh reader, more from one that survived
	// a §6 restart and re-accepted — resume[j] is the spool index this
	// attempt resends from (always 0 when the attempt streams the input).
	chans := make([]*targetChannel, k)
	resume := make([]int, k)
	var dialErr error
	for j := 0; j < k; j++ {
		split := req.Worker*k + j
		if completed[split] {
			continue
		}
		t, ok := bySplit[split]
		if !ok {
			dialErr = fmt.Errorf("stream: coordinator match set missing split %d", split)
			break
		}
		var slotSpool []spooledBlock
		if src.spool != nil {
			slotSpool = src.spool[j]
		}
		tc, idx, err := openChannel(req, cfg, t, slotSpool)
		if err != nil {
			dialErr = err
			break
		}
		chans[j] = tc
		resume[j] = idx
	}
	if dialErr != nil {
		closeAll(chans)
		if src.input != nil && src.spool != nil {
			// The upstream pipeline is one-shot: drain it into the spool now
			// so the retry attempt has the rows.
			if err := src.consumeInput(k, nil, cfg, proto, row.SchemaTypes(req.Schema)); err != nil {
				return false, &fatalError{err}
			}
		}
		return false, dialErr
	}

	// Step 8: round-robin the partition across the slots, sending only the
	// incomplete ones. The first attempt streams the input as it is
	// produced; retries resend unconfirmed slots from the spool, one
	// enqueue per block. Spooled frames keep whatever encoding the attempt
	// that built them negotiated — both framings stay decodable on every
	// reader, so a renegotiated retry never re-encodes.
	if src.input != nil {
		if err := src.consumeInput(k, chans, cfg, proto, row.SchemaTypes(req.Schema)); err != nil {
			// The pipeline feeding the sender failed: unsent rows are gone,
			// no restart can recover them.
			closeAll(chans)
			return false, &fatalError{err}
		}
	} else {
		for j, tc := range chans {
			if tc == nil || tc.aborted {
				continue
			}
			// Resend from the resume point: frames the reader confirmed
			// consuming (via the handshake) are skipped, so a surviving
			// reader is not fed duplicates it would have to discard.
			for _, sb := range src.spool[j][resume[j]:] {
				if err := tc.enqueue(sb.frame, sb.rows, sb.raw); err != nil {
					// Keep streaming the healthy slots; this one retries
					// next attempt.
					tc.abort()
					break
				}
			}
		}
	}
	// Await per-slot completion; the ACK handshake makes delivery failures
	// deterministic even when the OS buffered the final bytes.
	var firstErr error
	for j, tc := range chans {
		if tc == nil {
			continue
		}
		split := req.Worker*k + j
		if err := tc.finish(); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		completed[split] = true
		slotStats(stats, src, j, tc)
	}
	// Per-target recovery: before escalating to a §6 group restart, redial
	// each failed slot with capped exponential backoff + jitter and resume
	// from the frame-aligned spool (the handshake tells the reader's
	// consumed offset). A single broken connection is thereby absorbed
	// without touching the healthy slots or re-running any reader; only an
	// exhausted budget escalates.
	if firstErr != nil && src.spool != nil && cfg.ReconnectBudget > 0 {
		allRecovered := true
		for j, tc := range chans {
			split := req.Worker*k + j
			if completed[split] {
				continue
			}
			if tc == nil {
				allRecovered = false
				continue
			}
			if err := recoverSlot(req, cfg, stats, src.spool[j], split, bySplit[split]); err != nil {
				allRecovered = false
				firstErr = err
				continue
			}
			completed[split] = true
			slotStats(stats, src, j, nil)
		}
		if allRecovered {
			return true, nil
		}
	}
	if firstErr != nil {
		return false, firstErr
	}
	return true, nil
}

// slotStats folds one confirmed slot's delivery into the worker stats.
// With the replay spool on, the spool is the slot's logical content — a
// resumed channel resends only a suffix, so its own counters undercount the
// exactly-once delivery; without a spool the channel counters are exact.
func slotStats(stats *SenderStats, src *sendSource, j int, tc *targetChannel) {
	if src.spool != nil {
		for _, sb := range src.spool[j] {
			stats.RowsSent += sb.rows
			stats.BytesSent += int64(len(sb.frame))
			stats.FramesSent++
			stats.RawBytes += sb.raw
			stats.WireBytes += int64(len(sb.frame))
		}
		if tc != nil {
			stats.SpilledBytes += tc.spilledBytes
		}
		return
	}
	stats.RowsSent += tc.rows
	stats.BytesSent += tc.bytes
	stats.SpilledBytes += tc.spilledBytes
	stats.FramesSent += tc.frames
	stats.RawBytes += tc.rawBytes
	stats.WireBytes += tc.bytes
}

// recoverSlot redials one failed target until its slot is delivered and
// acknowledged or the reconnect budget runs out. Each attempt re-queries
// the coordinator for the split's latest registration — a reader that
// crashed and re-executed has a fresh listener and epoch there — and
// resumes from the spool frame holding the first row the reader has not
// consumed.
func recoverSlot(req SendRequest, cfg SenderConfig, stats *SenderStats, spool []spooledBlock, split int, t Target) error {
	var lastErr error
	for attempt := 0; attempt < cfg.ReconnectBudget; attempt++ {
		time.Sleep(backoffDelay(cfg.ReconnectBackoff, attempt, req.Worker, split))
		if nt, err := getTarget(req.CoordAddr, cfg.DialTimeout, req.Job, split); err == nil {
			t = nt
		}
		tc, idx, err := openChannel(req, cfg, t, spool)
		if err != nil {
			lastErr = err
			continue
		}
		stats.Reconnects++
		enqueued := true
		for _, sb := range spool[idx:] {
			if err := tc.enqueue(sb.frame, sb.rows, sb.raw); err != nil {
				tc.abort()
				lastErr = err
				enqueued = false
				break
			}
		}
		if !enqueued {
			continue
		}
		if err := tc.finish(); err != nil {
			lastErr = err
			continue
		}
		return nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("stream: split %d: no reconnect attempts allowed", split)
	}
	return fmt.Errorf("stream: split %d: reconnect budget (%d) exhausted: %w", split, cfg.ReconnectBudget, lastErr)
}

// backoffDelay is the capped exponential backoff between reconnect
// attempts, plus jitter in [0, delay). The jitter derives from (worker,
// split, attempt) through a splitmix64 step instead of a shared PRNG:
// concurrent recoveries decorrelate, and a given failure replays with
// identical timing.
func backoffDelay(base time.Duration, attempt, worker, split int) time.Duration {
	const maxBackoff = 500 * time.Millisecond
	d := base
	for i := 0; i < attempt && d < maxBackoff; i++ {
		d *= 2
	}
	if d > maxBackoff {
		d = maxBackoff
	}
	z := uint64(worker+1)*0x9E3779B97F4A7C15 + uint64(split+1)<<21 + uint64(attempt+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return d + time.Duration(z%uint64(d))
}

// getTarget asks the coordinator for a split's latest registration (the
// sender's mid-stream refresh; see handleGetTarget).
func getTarget(coordAddr string, timeout time.Duration, job string, split int) (_ Target, err error) {
	conn, err := net.DialTimeout("tcp", coordAddr, timeout)
	if err != nil {
		return Target{}, fmt.Errorf("stream: dial coordinator: %w", err)
	}
	defer func() {
		if cerr := conn.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	if err := json.NewEncoder(conn).Encode(message{Type: "get_target", Job: job, Split: split}); err != nil {
		return Target{}, err
	}
	if err := conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
		return Target{}, err
	}
	var reply message
	if err := json.NewDecoder(bufio.NewReader(conn)).Decode(&reply); err != nil {
		return Target{}, fmt.Errorf("stream: get_target: %w", err)
	}
	if reply.Type != "target" || len(reply.Targets) != 1 {
		return Target{}, fmt.Errorf("stream: get_target failed: %s", reply.Error)
	}
	return reply.Targets[0], nil
}

// consumeInput drains the streaming input exactly once, packing each
// slot's rows into block frames built on pooled buffers (or per-row v1
// frames when the job negotiated down), spooling each finished block
// (when replay is enabled) and fanning it out to the live channels (chans
// is nil when a dial failure means this attempt only spools). A slot's
// block flushes on the row/byte budget and at end of stream, so channel
// operations, spool entries, and wire writes are O(blocks), not O(rows).
// The input is consumed afterwards.
func (s *sendSource) consumeInput(k int, chans []*targetChannel, cfg SenderConfig, proto int, types []row.Type) error {
	in := s.input
	s.input = nil
	flush := func(j int, frame []byte, rows, raw int64) error {
		if frame == nil {
			return nil
		}
		if s.spool != nil {
			s.spool[j] = append(s.spool[j], spooledBlock{frame: frame, rows: rows, raw: raw})
		}
		if chans == nil {
			return nil
		}
		tc := chans[j]
		if tc == nil || tc.aborted {
			if s.spool == nil {
				row.RecycleBlockBuffer(frame)
			}
			return nil
		}
		if err := tc.enqueue(frame, rows, raw); err != nil {
			// Keep streaming the healthy slots; this one retries next
			// attempt (or fails the transfer when replay is off).
			tc.abort()
		}
		return nil
	}
	encoders := make([]row.BlockEncoder, k)
	if proto >= row.WireProtoCol {
		// v3: every slot's encoder stages column-major and Finish emits a
		// columnar frame with per-column encodings, regardless of whether
		// the rows arrive through a batch cursor or a row iterator — a UDF
		// pipe upstream must not cost the wire its compression. Len()
		// reports the v2-equivalent size in this mode, so the flush budget
		// (and the spill/queue behavior behind it) is unchanged.
		for j := range encoders {
			encoders[j].EnableColumnar(types, !cfg.DisableCompression)
		}
	}
	colMode := proto >= row.WireProtoCol
	finish := func(j int) error {
		enc := &encoders[j]
		rows, raw := int64(enc.Rows()), int64(enc.Len())
		frame := enc.Finish()
		if !colMode && frame != nil {
			// v1/v2 frames are the raw encoding: ratio 1.0 by definition.
			raw = int64(len(frame))
		}
		return flush(j, frame, rows, raw)
	}
	i := 0
	// Columnar fast path: when the input is a thin cursor over the engine's
	// columnar pipeline, encode wire frames straight from the batch's
	// vectors — same round-robin slot assignment, same flush budget, and
	// AppendBatchRow is value-identical to Append, so the decoded stream
	// cannot differ from the row path. With one target and v3 frames the
	// whole batch appends vector-at-a-time: no per-row step at all.
	if proto >= row.WireProtoBlock {
		if cb, ok := sqlengine.AsColBatchSource(in); ok {
			for {
				b, ok, err := cb.NextColBatch()
				if err != nil {
					return err
				}
				if !ok {
					break
				}
				n := b.Len()
				if k == 1 && proto >= row.WireProtoCol {
					enc := &encoders[0]
					enc.AppendBatch(b)
					i += n
					if enc.Rows() >= cfg.BlockRows || enc.Len() >= cfg.BlockBytes {
						if err := finish(0); err != nil {
							return err
						}
					}
					continue
				}
				for si := 0; si < n; si++ {
					j := i % k
					i++
					enc := &encoders[j]
					enc.AppendBatchRow(b, b.SelPos(si))
					if enc.Rows() >= cfg.BlockRows || enc.Len() >= cfg.BlockBytes {
						if err := finish(j); err != nil {
							return err
						}
					}
				}
			}
			for j := range encoders {
				if err := finish(j); err != nil {
					return err
				}
			}
			return nil
		}
	}
	for {
		r, ok, err := in.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		j := i % k
		i++
		if proto < row.WireProtoBlock {
			// v1 fallback: one frame per row, exactly the old wire format.
			f := row.AppendBinary(nil, r)
			if err := flush(j, f, 1, int64(len(f))); err != nil {
				return err
			}
			continue
		}
		enc := &encoders[j]
		enc.Append(r)
		if enc.Rows() >= cfg.BlockRows || enc.Len() >= cfg.BlockBytes {
			if err := finish(j); err != nil {
				return err
			}
		}
	}
	// End of stream: flush every slot's partial block.
	for j := range encoders {
		if err := finish(j); err != nil {
			return err
		}
	}
	return nil
}

func nodeAddr(n *cluster.Node) string {
	if n == nil {
		return ""
	}
	return n.Addr
}

func closeAll(chans []*targetChannel) {
	for _, tc := range chans {
		if tc != nil {
			tc.abort()
		}
	}
}

// targetChannel is the per-ML-worker send path: a bounded frame queue
// drained by a writer goroutine into a buffered socket, with overflow
// spilling to a local disk file.
type targetChannel struct {
	conn   net.Conn
	w      *bufio.Writer
	queue  chan []byte
	done   chan error
	cfg    SenderConfig
	target Target

	// cost charging endpoints (simulated addresses).
	cost     *cluster.CostModel
	fromNode *cluster.Node
	toNode   *cluster.Node

	// credits carries receiver flow-control grants (bytes per credit);
	// acks delivers the final end-of-stream acknowledgement (or the
	// connection error that prevented it).
	credits chan int
	acks    chan error

	spill        *os.File
	spillTimer   *time.Timer
	spilledBytes int64
	rows         int64
	bytes        int64
	rawBytes     int64
	frames       int64
	aborted      bool

	// recycle marks frames as pool-owned: with replay disabled nothing
	// retains a frame after it leaves the process, so the writer returns
	// its buffer to the block pool once written (to the socket or the
	// spill file). With replay enabled the spool owns the frames and they
	// must never be recycled mid-transfer.
	recycle bool
}

// resumeMagic opens the reader→sender resume header on every data
// connection: magic(2) epoch(4) rowsConsumed(8), big-endian. The sender
// answers with startRow(8) — the first row of the first frame it will
// (re)send — then the schema, then frames. On a fresh connection both
// offsets are zero and the handshake degenerates to the original protocol
// plus 22 bytes.
const resumeMagic = 0x534C // "SL"

// errStaleEpoch marks a handshake against a reader from a different
// registration generation than the sender's target info; the recovery loop
// refreshes via get_target and redials.
var errStaleEpoch = errors.New("stream: stale target epoch")

// readResumeHeader reads the reader's resume header off a fresh data
// connection.
func readResumeHeader(conn net.Conn, timeout time.Duration) (epoch uint32, consumed uint64, err error) {
	if err := conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
		return 0, 0, err
	}
	var hdr [14]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return 0, 0, fmt.Errorf("resume header: %w", err)
	}
	if err := conn.SetReadDeadline(time.Time{}); err != nil {
		return 0, 0, err
	}
	if m := binary.BigEndian.Uint16(hdr[:2]); m != resumeMagic {
		return 0, 0, fmt.Errorf("bad resume magic %#x", m)
	}
	return binary.BigEndian.Uint32(hdr[2:6]), binary.BigEndian.Uint64(hdr[6:14]), nil
}

// resumePoint locates the resume frame for a reader that has consumed the
// given row count: the index of the spool frame containing the first
// unseen row, and that frame's start row. A consumed count past the spool
// returns index -1 (protocol violation — the reader saw rows this sender
// never spooled).
func resumePoint(spool []spooledBlock, consumed uint64) (int, uint64) {
	var cum uint64
	for i, sb := range spool {
		if cum+uint64(sb.rows) > consumed {
			return i, cum
		}
		cum += uint64(sb.rows)
	}
	if cum == consumed {
		return len(spool), cum
	}
	return -1, 0
}

// openChannel dials one target and runs the sender side of the resume
// handshake; it returns the live channel plus the spool index to resend
// from. The channel owns the connection; the caller owns enqueueing.
func openChannel(req SendRequest, cfg SenderConfig, t Target, spool []spooledBlock) (*targetChannel, int, error) {
	dial := cfg.Dial
	if dial == nil {
		dial = net.DialTimeout
	}
	conn, err := dial("tcp", t.Listen, cfg.DialTimeout)
	if err != nil {
		return nil, 0, fmt.Errorf("stream: dial ml worker %s: %w", t.Listen, err)
	}
	fail := func(err error) (*targetChannel, int, error) {
		if cerr := conn.Close(); cerr != nil {
			err = errors.Join(err, cerr)
		}
		return nil, 0, err
	}
	epoch, consumed, err := readResumeHeader(conn, cfg.DialTimeout)
	if err != nil {
		return fail(fmt.Errorf("stream: ml worker %s: %w", t.Listen, err))
	}
	if t.Epoch != 0 && epoch != t.Epoch {
		return fail(fmt.Errorf("stream: ml worker %s: %w (reader epoch %d, matched epoch %d)",
			t.Listen, errStaleEpoch, epoch, t.Epoch))
	}
	idx, startRow := resumePoint(spool, consumed)
	if idx < 0 {
		return fail(fmt.Errorf("stream: ml worker %s: consumed %d rows beyond the spool", t.Listen, consumed))
	}
	tc := &targetChannel{
		conn:    conn,
		w:       bufio.NewWriterSize(conn, cfg.BufferSize),
		queue:   make(chan []byte, cfg.QueueFrames),
		done:    make(chan error, 1),
		credits: make(chan int, 1024),
		acks:    make(chan error, 1),
		cfg:     cfg,
		target:  t,
		cost:    req.Cost,
		recycle: cfg.DisableReplay,
	}
	tc.fromNode = req.Node
	if req.Topo != nil {
		tc.toNode = req.Topo.ByAddr(t.Addr)
	}
	var ack [8]byte
	binary.BigEndian.PutUint64(ack[:], startRow)
	if _, err := tc.w.Write(ack[:]); err != nil {
		return fail(err)
	}
	if err := row.WriteSchema(tc.w, req.Schema); err != nil {
		return fail(err)
	}
	go tc.creditLoop()
	go tc.writeLoop()
	return tc, idx, nil
}

// creditLoop reads flow-control bytes from the receiver: one credit byte
// per consumed receive buffer, and the final delivery ACK. It closes the
// credit channel when the connection drops, unblocking a stalled writer.
func (tc *targetChannel) creditLoop() {
	defer close(tc.credits)
	buf := make([]byte, 256)
	for {
		n, err := tc.conn.Read(buf)
		for i := 0; i < n; i++ {
			switch buf[i] {
			case creditByte:
				select {
				case tc.credits <- tc.cfg.BufferSize:
				default: // writer far behind on credits; drop is safe
				}
			case ackByte:
				tc.acks <- nil
				return
			}
		}
		if err != nil {
			tc.acks <- fmt.Errorf("stream: no ack from %s: %w", tc.target.Listen, err)
			return
		}
	}
}

// enqueue hands one encoded block frame (rows rows) to the writer, taking
// ownership of the slice (callers must not reuse it). When the queue is
// full it blocks up to SpillWait for the consumer to catch up, then
// spills the whole block to disk in one write (the paper's
// producer/consumer synchronization for slow ML workers, at block
// granularity).
func (tc *targetChannel) enqueue(f []byte, rows, raw int64) error {
	account := func() {
		tc.rows += rows
		tc.bytes += int64(len(f))
		tc.rawBytes += raw
		tc.frames++
	}
	select {
	case tc.queue <- f:
		account()
		return nil
	default:
	}
	// Queue full: give the consumer SpillWait to drain before spilling.
	if tc.spillTimer == nil {
		tc.spillTimer = time.NewTimer(tc.cfg.SpillWait)
	} else {
		tc.spillTimer.Reset(tc.cfg.SpillWait)
	}
	select {
	case tc.queue <- f:
		if !tc.spillTimer.Stop() {
			<-tc.spillTimer.C
		}
		account()
		return nil
	case <-tc.spillTimer.C:
	}
	// Queue full: spill. The writer drains the spill file after the
	// in-memory queue closes, preserving at-least-once delivery. The frame
	// goes to disk byte-identical — the file is a concatenation of wire
	// frames, replayed as raw bytes.
	if tc.spill == nil {
		sp, err := os.CreateTemp(tc.cfg.SpillDir, "sqlml-spill-*")
		if err != nil {
			if tc.recycle {
				row.RecycleBlockBuffer(f)
			}
			return fmt.Errorf("stream: create spill file: %w", err)
		}
		tc.spill = sp
	}
	if _, err := tc.spill.Write(f); err != nil {
		if tc.recycle {
			row.RecycleBlockBuffer(f)
		}
		return fmt.Errorf("stream: spill write: %w", err)
	}
	tc.spilledBytes += int64(len(f))
	account()
	if tc.cost != nil && tc.fromNode != nil {
		tc.cost.ChargeDiskWrite(tc.fromNode, len(f))
	}
	// Spilled frames never reach the writer goroutine; their only other
	// owner is the replay spool.
	if tc.recycle {
		row.RecycleBlockBuffer(f)
	}
	return nil
}

// writeLoop drains the queue into the socket under credit-based flow
// control — the writer keeps at most one send buffer plus one receive
// buffer of unconsumed bytes in flight, so a slow consumer backpressures
// the writer (and, through the bounded queue, the producer, whose overflow
// spills to disk). Network cost is charged per flushed buffer.
func (tc *targetChannel) writeLoop() {
	var pending int
	charge := func() {
		if pending > 0 && tc.cost != nil && tc.fromNode != nil && tc.toNode != nil {
			tc.cost.ChargeNet(tc.fromNode, tc.toNode, pending)
		}
		pending = 0
	}
	window := 2 * tc.cfg.BufferSize
	inflight := 0
	writeChunk := func(chunk []byte) error {
		// Flow control: wait for credits while a full window is in flight.
		// Everything buffered locally must be flushed first — the reader
		// can only grant credits for bytes it can actually see. A chunk is
		// written whole once there is *any* window room (not only when it
		// fits entirely): a block frame can exceed the window on its own,
		// and since the receiver credits a block's bytes only after serving
		// its last row, requiring the whole frame to fit would deadlock.
		// In-flight bytes stay bounded by one window plus one frame.
		if inflight >= window {
			if err := tc.w.Flush(); err != nil {
				return err
			}
			charge()
		}
		for inflight >= window {
			credit, ok := <-tc.credits
			if !ok {
				return fmt.Errorf("stream: receiver %s gone", tc.target.Listen)
			}
			inflight -= credit
			if inflight < 0 {
				inflight = 0
			}
		}
		inflight += len(chunk)
		_, err := tc.w.Write(chunk)
		return err
	}
	for frame := range tc.queue {
		err := writeChunk(frame)
		n := len(frame)
		if tc.recycle {
			row.RecycleBlockBuffer(frame)
		}
		if err != nil {
			tc.done <- err
			tc.drain()
			return
		}
		pending += n
		if pending >= tc.cfg.BufferSize {
			if err := tc.w.Flush(); err != nil {
				tc.done <- err
				tc.drain()
				return
			}
			charge()
		}
	}
	// Replay the spill file, if any — frame-aligned: the flow-control
	// window assumes every write is a whole frame (a partial frame can
	// never earn credits, since the reader only credits bytes it has
	// decoded and served), so the replay re-frames the raw file instead of
	// streaming fixed-size chunks.
	if tc.spill != nil {
		if _, err := tc.spill.Seek(0, 0); err != nil {
			tc.done <- err
			return
		}
		r := bufio.NewReader(tc.spill)
		var buf []byte
		for {
			frame, err := row.ReadRawFrame(r, buf[:0])
			if err == io.EOF {
				break
			}
			if err != nil {
				tc.done <- err
				return
			}
			buf = frame
			if tc.cost != nil && tc.fromNode != nil {
				tc.cost.ChargeDiskRead(tc.fromNode, len(frame))
			}
			if werr := writeChunk(frame); werr != nil {
				tc.done <- werr
				return
			}
			pending += len(frame)
			if pending >= tc.cfg.BufferSize {
				if werr := tc.w.Flush(); werr != nil {
					tc.done <- werr
					return
				}
				charge()
			}
		}
	}
	// The explicit end-of-stream frame: without it a reader could mistake a
	// connection that died exactly on a frame boundary for completion and
	// commit a truncated split.
	if err := row.WriteEOS(tc.w); err != nil {
		tc.done <- err
		return
	}
	if err := tc.w.Flush(); err != nil {
		tc.done <- err
		return
	}
	charge()
	// Half-close the write side so the reader observes a clean end of
	// stream while the connection stays readable for credits and the ACK.
	if cw, ok := tc.conn.(interface{ CloseWrite() error }); ok {
		if err := cw.CloseWrite(); err != nil {
			tc.done <- err
			return
		}
	}
	// The creditLoop delivers the reader's final acknowledgement.
	select {
	case err := <-tc.acks:
		tc.done <- err
	case <-time.After(tc.cfg.DialTimeout):
		tc.done <- fmt.Errorf("stream: ack timeout from %s", tc.target.Listen)
	}
}

// drain discards queued frames after a write failure, recycling their
// buffers when nothing else (the replay spool) owns them.
func (tc *targetChannel) drain() {
	for f := range tc.queue {
		if tc.recycle {
			row.RecycleBlockBuffer(f)
		}
	}
}

// finish closes the queue and waits for the writer's outcome. Teardown
// errors (connection close, spill close/remove) are joined into the
// result: a spill file that cannot be closed or removed is a durability
// leak the caller must hear about, even when delivery itself succeeded.
func (tc *targetChannel) finish() error {
	if tc.aborted {
		return fmt.Errorf("stream: channel aborted")
	}
	close(tc.queue)
	err := <-tc.done
	if cerr := tc.cleanup(); cerr != nil {
		err = errors.Join(err, cerr)
	}
	return err
}

// abort tears the channel down without waiting for delivery.
func (tc *targetChannel) abort() {
	if tc.aborted {
		return
	}
	tc.aborted = true
	// Closing the connection first unblocks a writer stuck in Write; the
	// duplicate Close inside cleanup then reports "use of closed", which
	// is expected and irrelevant on this already-failed path.
	_ = tc.conn.Close()
	close(tc.queue)
	<-tc.done
	_ = tc.cleanup()
}

// cleanup releases the connection and the spill spool, reporting every
// failure so callers on the success path can surface them.
func (tc *targetChannel) cleanup() error {
	err := tc.conn.Close()
	if tc.spill != nil {
		name := tc.spill.Name()
		if cerr := tc.spill.Close(); cerr != nil {
			err = errors.Join(err, cerr)
		}
		if rerr := os.Remove(name); rerr != nil {
			err = errors.Join(err, rerr)
		}
	}
	return err
}

// ackByte is the end-of-stream acknowledgement the ML reader returns;
// creditByte is its flow-control grant (one per consumed receive buffer).
const (
	ackByte    = 0x06
	creditByte = 0x07
)

func sleepMillis(n int) { time.Sleep(time.Duration(n) * time.Millisecond) }
