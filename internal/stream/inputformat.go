package stream

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"sqlml/internal/cluster"
	"sqlml/internal/hadoopfmt"
	"sqlml/internal/row"
)

// InputFormat is the SQLStreamInputFormat of the paper: a Hadoop-style
// InputFormat whose getInputSplits contacts the coordinator (step 3) and
// whose record readers are TCP servers the SQL workers connect to (step 7).
// Any ML system that ingests via InputFormats can consume the stream by
// swapping this in — no engine changes.
type InputFormat struct {
	CoordAddr string
	Job       string
	// ReceiveBufferSize is the per-reader receive buffer (the paper's
	// experiments use 4 KB).
	ReceiveBufferSize int
	// AcceptTimeout bounds how long a reader waits for its SQL worker.
	AcceptTimeout time.Duration
	// DialTimeout bounds the coordinator control dials (get_splits,
	// register_ml). 0 means the 10s default.
	DialTimeout time.Duration
	// ReconnectBudget bounds how many times a reader re-accepts on its
	// listener after a mid-stream connection failure, resuming at its
	// consumed offset via the resume handshake, before the failure
	// escalates to task re-execution (hadoopfmt.RetryableError). 0 means
	// the default; negative disables reader-side recovery.
	ReconnectBudget int
	// ConsumeDelay, when positive, sleeps per row — the slow-consumer knob
	// for the spill ablation.
	ConsumeDelay time.Duration
	// Inject, when set, is consulted per received row; returning true makes
	// the reader fail abruptly (no ACK), simulating an ML worker crash for
	// the §6 restart tests.
	Inject func(split, rowsRead int) bool
	// Proto caps the wire-format version this reader advertises to the
	// coordinator (0 means latest). Setting row.WireProtoRow simulates a
	// pre-block reader: the handshake then pins the whole job to per-row
	// v1 frames.
	Proto int

	mu      sync.Mutex
	fetched bool
	schema  row.Schema
	splits  []SplitInfo
}

// Split is one stream split as seen by the ML engine.
type Split struct {
	Info      SplitInfo
	coordAddr string
	job       string
}

// Locations implements hadoopfmt.InputSplit: the SQL worker's address, so
// schedulers colocate the ML worker with its data producer.
func (s *Split) Locations() []string { return s.Info.Locations }

// Length implements hadoopfmt.InputSplit. Stream sizes are unknown ahead
// of transfer.
func (s *Split) Length() int64 { return 0 }

// String implements hadoopfmt.InputSplit.
func (s *Split) String() string {
	return fmt.Sprintf("stream:%s/split-%d(sql-worker-%d)", s.job, s.Info.ID, s.Info.SQLWorker)
}

// fetch retrieves (once) the split list and schema from the coordinator.
// The coordinator exchange runs outside f.mu — holding a mutex across a
// dial would stall every other InputFormat method for the full network
// timeout. Two racing callers may both fetch; the exchange is a pure
// read, and the second publisher finds fetched already set and drops its
// copy.
func (f *InputFormat) fetch() error {
	f.mu.Lock()
	fetched := f.fetched
	f.mu.Unlock()
	if fetched {
		return nil
	}
	schema, splits, err := f.fetchSplits()
	if err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.fetched {
		f.schema = schema
		f.splits = splits
		f.fetched = true
	}
	return nil
}

// dialTimeout is the coordinator control-dial bound.
func (f *InputFormat) dialTimeout() time.Duration {
	if f.DialTimeout > 0 {
		return f.DialTimeout
	}
	return 10 * time.Second
}

// fetchSplits performs the get_splits exchange with the coordinator.
func (f *InputFormat) fetchSplits() (_ row.Schema, _ []SplitInfo, err error) {
	conn, err := net.DialTimeout("tcp", f.CoordAddr, f.dialTimeout())
	if err != nil {
		return row.Schema{}, nil, fmt.Errorf("stream: dial coordinator: %w", err)
	}
	defer func() {
		if cerr := conn.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	if err := json.NewEncoder(conn).Encode(message{Type: "get_splits", Job: f.Job}); err != nil {
		return row.Schema{}, nil, err
	}
	var reply message
	if err := json.NewDecoder(bufio.NewReader(conn)).Decode(&reply); err != nil {
		return row.Schema{}, nil, fmt.Errorf("stream: get_splits: %w", err)
	}
	if reply.Type != "splits" {
		return row.Schema{}, nil, fmt.Errorf("stream: get_splits failed: %s", reply.Error)
	}
	schema, err := row.ParseSchema(reply.Schema)
	if err != nil {
		return row.Schema{}, nil, err
	}
	return schema, reply.Splits, nil
}

// Schema implements hadoopfmt.InputFormat.
func (f *InputFormat) Schema() (row.Schema, error) {
	if err := f.fetch(); err != nil {
		return row.Schema{}, err
	}
	return f.schema, nil
}

// Splits implements hadoopfmt.InputFormat. The coordinator dictates the
// split count (m = n·k); the numSplits hint is ignored, exactly as the
// paper's customized getInputSplits does.
func (f *InputFormat) Splits(int) ([]hadoopfmt.InputSplit, error) {
	if err := f.fetch(); err != nil {
		return nil, err
	}
	out := make([]hadoopfmt.InputSplit, len(f.splits))
	for i, si := range f.splits {
		out[i] = &Split{Info: si, coordAddr: f.CoordAddr, job: f.Job}
	}
	return out, nil
}

// Open implements hadoopfmt.InputFormat: it starts a TCP listener for the
// split, registers it with the coordinator (step 4), and returns a reader
// that accepts the SQL worker's connection lazily.
func (f *InputFormat) Open(split hadoopfmt.InputSplit, node *cluster.Node) (hadoopfmt.RecordReader, error) {
	ssplit, ok := split.(*Split)
	if !ok {
		return nil, fmt.Errorf("stream: cannot open %T", split)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	addr := ""
	if node != nil {
		addr = node.Addr
	}
	epoch, err := f.registerML(ssplit.Info.ID, ln.Addr().String(), addr)
	if err != nil {
		if cerr := ln.Close(); cerr != nil {
			err = errors.Join(err, cerr)
		}
		return nil, err
	}
	timeout := f.AcceptTimeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	bufSize := f.ReceiveBufferSize
	if bufSize <= 0 {
		bufSize = 4 << 10
	}
	budget := f.ReconnectBudget
	if budget == 0 {
		budget = 2
	}
	if budget < 0 {
		budget = 0
	}
	return &streamReader{
		format:  f,
		split:   ssplit.Info.ID,
		ln:      ln,
		timeout: timeout,
		bufSize: bufSize,
		epoch:   epoch,
		budget:  budget,
	}, nil
}

func (f *InputFormat) registerML(split int, listen, nodeAddr string) (_ uint32, err error) {
	conn, err := net.DialTimeout("tcp", f.CoordAddr, f.dialTimeout())
	if err != nil {
		return 0, fmt.Errorf("stream: dial coordinator: %w", err)
	}
	defer func() {
		if cerr := conn.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	proto := f.Proto
	if proto <= 0 {
		proto = row.WireProtoLatest
	}
	if err := json.NewEncoder(conn).Encode(message{
		Type: "register_ml", Job: f.Job, Split: split, Listen: listen, Addr: nodeAddr, Proto: proto,
	}); err != nil {
		return 0, err
	}
	var reply message
	if err := json.NewDecoder(bufio.NewReader(conn)).Decode(&reply); err != nil {
		return 0, fmt.Errorf("stream: register_ml: %w", err)
	}
	if reply.Type != "ok" {
		return 0, fmt.Errorf("stream: register_ml failed: %s", reply.Error)
	}
	return reply.Epoch, nil
}

// streamReader is the receiving end of one split's transfer. A mid-stream
// connection failure is first absorbed in place: the listener stays open,
// the reader re-accepts, and the resume handshake (epoch + consumed row
// count) lets the sender resend only what this reader has not served —
// rows already handed to the task are skipped on the wire, so delivery
// stays exactly-once. Only an exhausted reconnect budget (or an injected
// worker crash) surfaces as hadoopfmt.RetryableError: the consuming task
// then discards its partial rows and re-opens the split (a fresh listener
// + registration, bumping the coordinator epoch), which is the ML half of
// the §6 restart protocol.
type streamReader struct {
	format  *InputFormat
	split   int
	ln      net.Listener
	timeout time.Duration
	bufSize int
	epoch   uint32
	budget  int

	conn       net.Conn
	rd         *row.Reader
	types      []row.Type
	rowsRead   int
	credited   int64
	reconnects int
	done       bool
	failed     bool
	closed     bool
}

// Next implements hadoopfmt.RecordReader. The frame reader underneath is
// block-aware: one wire read stages a whole block, and Next serves rows
// out of it without further I/O or re-allocation.
func (r *streamReader) Next() (row.Row, bool, error) {
	if r.done || r.failed {
		return nil, false, nil
	}
	for {
		if r.conn == nil {
			if err := r.connect(); err != nil {
				return nil, false, r.fail(err)
			}
		}
		rw, err := r.rd.Read()
		if err == io.EOF {
			return nil, false, r.finish()
		}
		if err != nil {
			if rerr := r.reconnect(fmt.Errorf("stream: split %d read: %w", r.split, err)); rerr != nil {
				return nil, false, r.fail(rerr)
			}
			continue
		}
		if err := r.consumed(); err != nil {
			return nil, false, err
		}
		return rw, true, nil
	}
}

// NextBatch implements hadoopfmt.BatchRecordReader: it serves one wire
// frame's rows per call — the whole decoded block, or a single row from a
// v1 frame — so batch-aware consumers amortize per-row call overhead on
// top of the amortized I/O.
func (r *streamReader) NextBatch(buf []row.Row) ([]row.Row, bool, error) {
	if r.done || r.failed {
		return nil, false, nil
	}
	for {
		if r.conn == nil {
			if err := r.connect(); err != nil {
				return nil, false, r.fail(err)
			}
		}
		batch, err := r.rd.ReadBlock(buf[:0])
		if err == io.EOF {
			return nil, false, r.finish()
		}
		if err != nil {
			if rerr := r.reconnect(fmt.Errorf("stream: split %d read: %w", r.split, err)); rerr != nil {
				return nil, false, r.fail(rerr)
			}
			continue
		}
		for range batch {
			// Per-row bookkeeping still runs row-at-a-time: the slow-consumer
			// delay and the §6 failure injection are per-row contracts, and a
			// mid-batch injected crash discards the batch exactly like task
			// re-execution discards partial rows.
			if err := r.consumed(); err != nil {
				return nil, false, err
			}
		}
		return batch, true, nil
	}
}

// NextColBatch implements hadoopfmt.ColBatchRecordReader: one wire frame
// per call, materialized straight into dst. A v3 columnar frame lands
// without ever forming a row — the zero-pivot path the sender's columnar
// encoder exists for — while v1/v2 frames (mixed-version jobs, resumed
// streams mid-frame) transpose through rows exactly once, here.
func (r *streamReader) NextColBatch(dst *row.ColBatch) (int, bool, error) {
	if r.done || r.failed {
		return 0, false, nil
	}
	if r.types == nil {
		s, err := r.format.Schema()
		if err != nil {
			return 0, false, r.fail(err)
		}
		r.types = row.SchemaTypes(s)
	}
	for {
		if r.conn == nil {
			if err := r.connect(); err != nil {
				return 0, false, r.fail(err)
			}
		}
		n, err := r.rd.ReadColBatch(dst, r.types)
		if err == io.EOF {
			return 0, false, r.finish()
		}
		if err != nil {
			if rerr := r.reconnect(fmt.Errorf("stream: split %d read: %w", r.split, err)); rerr != nil {
				return 0, false, r.fail(rerr)
			}
			continue
		}
		for i := 0; i < n; i++ {
			// Per-row bookkeeping stays row-at-a-time: the slow-consumer
			// delay and the §6 failure injection are per-row contracts, and
			// a mid-batch injected crash discards the batch exactly like
			// task re-execution discards partial rows.
			if err := r.consumed(); err != nil {
				return 0, false, err
			}
		}
		return n, true, nil
	}
}

// finish acknowledges a clean end of stream.
func (r *streamReader) finish() error {
	r.done = true
	if err := r.conn.SetWriteDeadline(time.Now().Add(r.timeout)); err != nil {
		return r.fail(fmt.Errorf("stream: ack deadline: %w", err))
	}
	if _, werr := r.conn.Write([]byte{ackByte}); werr != nil {
		return r.fail(fmt.Errorf("stream: ack write: %w", werr))
	}
	return r.Close()
}

// consumed runs the per-row bookkeeping: the slow-consumer delay, credit
// grants, and failure injection. A row is counted here before it is handed
// to the task, and the count is what the resume handshake reports — so any
// failure after the count must escalate to task re-execution (which
// discards everything) rather than a resume (which would skip the counted
// but undelivered row).
func (r *streamReader) consumed() error {
	r.rowsRead++
	if r.format.ConsumeDelay > 0 {
		time.Sleep(r.format.ConsumeDelay)
	}
	if err := r.grantCredits(); err != nil {
		return r.fail(err)
	}
	if inject := r.format.Inject; inject != nil && inject(r.split, r.rowsRead) {
		return r.fail(fmt.Errorf("stream: split %d: injected ML worker failure", r.split))
	}
	return nil
}

// grantCredits implements the reader's half of flow control: one credit
// per consumed receive buffer. Credits flow only after rows have been
// consumed (including the injected delay), which is what makes a slow ML
// worker backpressure — and eventually spill — the SQL-side sender. A
// block frame's bytes enter the reader's consumed counter only once its
// last row is served, so buffered-but-unconsumed blocks grant nothing.
// Each credit accounts exactly bufSize bytes (the remainder carries over);
// acknowledging "everything so far" instead would leak phantom in-flight
// bytes on the sender until its window jammed shut.
func (r *streamReader) grantCredits() error {
	for consumed := r.rd.Bytes(); consumed-r.credited >= int64(r.bufSize); {
		r.credited += int64(r.bufSize)
		if err := r.conn.SetWriteDeadline(time.Now().Add(r.timeout)); err != nil {
			return fmt.Errorf("stream: credit deadline: %w", err)
		}
		if _, err := r.conn.Write([]byte{creditByte}); err != nil {
			return fmt.Errorf("stream: credit write: %w", err)
		}
	}
	return nil
}

// connect accepts one data connection and runs the reader side of the
// resume handshake on it.
func (r *streamReader) connect() error {
	type result struct {
		conn net.Conn
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		conn, err := r.ln.Accept()
		ch <- result{conn, err}
	}()
	select {
	case res := <-ch:
		if res.err != nil {
			return res.err
		}
		r.conn = res.conn
	case <-time.After(r.timeout):
		err := fmt.Errorf("stream: split %d: no connection within %v", r.split, r.timeout)
		if cerr := r.ln.Close(); cerr != nil {
			err = errors.Join(err, cerr)
		}
		return err
	}
	return r.handshake()
}

// handshake sends the resume header (epoch + rows consumed), reads the
// sender's start row, and skips the duplicate prefix of a resumed stream:
// rows this reader already served reappear on the wire only because the
// sender's spool is frame-aligned, so they are consumed silently — credits
// still flow for them (the sender's window is per-connection), but the
// consume delay, the injection hook, and the row count do not run again.
func (r *streamReader) handshake() error {
	r.credited = 0
	var hdr [14]byte
	binary.BigEndian.PutUint16(hdr[:2], resumeMagic)
	binary.BigEndian.PutUint32(hdr[2:6], r.epoch)
	binary.BigEndian.PutUint64(hdr[6:14], uint64(r.rowsRead))
	if err := r.conn.SetWriteDeadline(time.Now().Add(r.timeout)); err != nil {
		return err
	}
	if _, err := r.conn.Write(hdr[:]); err != nil {
		return fmt.Errorf("stream: split %d resume header: %w", r.split, err)
	}
	if err := r.conn.SetReadDeadline(time.Now().Add(r.timeout)); err != nil {
		return err
	}
	br := bufio.NewReaderSize(r.conn, r.bufSize)
	var ack [8]byte
	if _, err := io.ReadFull(br, ack[:]); err != nil {
		return fmt.Errorf("stream: split %d resume ack: %w", r.split, err)
	}
	startRow := binary.BigEndian.Uint64(ack[:])
	if startRow > uint64(r.rowsRead) {
		return fmt.Errorf("stream: split %d: sender resumes at row %d beyond consumed %d", r.split, startRow, r.rowsRead)
	}
	if _, err := row.ReadSchema(br); err != nil {
		return fmt.Errorf("stream: split %d schema: %w", r.split, err)
	}
	if err := r.conn.SetReadDeadline(time.Time{}); err != nil {
		return err
	}
	r.rd = row.NewReader(br)
	r.rd.RequireEOS()
	for skip := uint64(r.rowsRead) - startRow; skip > 0; skip-- {
		if _, err := r.rd.Read(); err != nil {
			return fmt.Errorf("stream: split %d resume skip: %w", r.split, err)
		}
		if err := r.grantCredits(); err != nil {
			return err
		}
	}
	return nil
}

// reconnect re-accepts on the still-open listener after a mid-stream
// connection failure. It returns nil when a resumed connection is live
// again; otherwise the original cause (or the last attempt's failure) for
// the caller to escalate.
func (r *streamReader) reconnect(cause error) error {
	for attempt := 0; attempt < r.budget; attempt++ {
		if r.conn != nil {
			//lint:allow errdiscard the connection already failed; its close outcome cannot matter
			r.conn.Close()
			r.conn, r.rd = nil, nil
		}
		r.reconnects++
		if err := r.connect(); err != nil {
			cause = err
			continue
		}
		return nil
	}
	return cause
}

// fail closes everything abruptly (no ACK) and wraps the error as
// retryable so the task layer re-executes the split.
func (r *streamReader) fail(err error) error {
	r.failed = true
	// Best-effort teardown: the split is already failing with err, and the
	// retry layer matches on that error, so close noise is dropped.
	_ = r.Close()
	return &hadoopfmt.RetryableError{Err: err}
}

// Close implements hadoopfmt.RecordReader. It is idempotent: finish and
// the task layer's teardown both call it, and only the first close's
// outcome is meaningful.
func (r *streamReader) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	var err error
	if r.conn != nil {
		err = r.conn.Close()
	}
	return errors.Join(err, r.ln.Close())
}
