// Package hadoopfmt defines the Hadoop-style input interfaces that every
// data-consuming engine in this repository ingests through: InputFormat,
// InputSplit, and RecordReader.
//
// The paper's genericity claim rests on exactly this seam: "our techniques
// apply to ... any big ML system that uses Hadoop InputFormats to ingest
// input data". Both the in-memory ML engine and the MapReduce engine here
// read only through these interfaces, so swapping a DFS text table for the
// parallel streaming transfer (stream.SQLStreamInputFormat) requires no
// engine changes — the paper's step-3 getInputSplits hook included.
package hadoopfmt

import (
	"bufio"
	"errors"
	"fmt"
	"io"

	"sqlml/internal/cluster"
	"sqlml/internal/dfs"
	"sqlml/internal/row"
)

// InputSplit is one unit of parallel input, consumed by exactly one worker.
type InputSplit interface {
	// Locations returns addresses where reading this split is node-local.
	// Schedulers use these to colocate workers with their data, in the
	// best-effort manner the paper describes.
	Locations() []string
	// Length is the split's size in bytes (approximate for streams).
	Length() int64
	// String identifies the split for logging.
	String() string
}

// RecordReader iterates the rows of one split.
type RecordReader interface {
	// Next returns the next row. ok is false at the end of the split.
	Next() (r row.Row, ok bool, err error)
	Close() error
}

// BatchRecordReader is an optional extension of RecordReader: readers that
// stage multiple rows per underlying transfer unit (e.g. one wire block of
// the streaming transfer) expose them a batch at a time, so consumers
// amortize per-row call overhead. NextBatch appends into buf (which may be
// nil or recycled between calls) and returns the filled batch; ok is false
// at the end of the split. Batches interleave freely with Next.
type BatchRecordReader interface {
	RecordReader
	NextBatch(buf []row.Row) (batch []row.Row, ok bool, err error)
}

// ColBatchRecordReader is a further optional extension: readers whose
// transfer unit is already column-major (the v3 columnar wire frames of
// the streaming transfer) materialize it straight into a ColBatch, so a
// columnar consumer ingests without ever constructing a row. NextColBatch
// resets and fills dst (the reader knows its own schema) and returns the
// row count; ok is false at the end of the split. Calls interleave freely
// with Next/NextBatch — each call serves whole transfer units.
type ColBatchRecordReader interface {
	RecordReader
	NextColBatch(dst *row.ColBatch) (n int, ok bool, err error)
}

// ReadBatch drains one batch from rr, falling back to a single Next call
// when rr does not implement BatchRecordReader. Callers must copy rows they
// retain before reusing buf.
func ReadBatch(rr RecordReader, buf []row.Row) ([]row.Row, bool, error) {
	if br, ok := rr.(BatchRecordReader); ok {
		return br.NextBatch(buf)
	}
	r, ok, err := rr.Next()
	if !ok || err != nil {
		return nil, false, err
	}
	return append(buf[:0], r), true, nil
}

// InputFormat produces splits and readers over a dataset.
type InputFormat interface {
	// Schema returns the row schema of the dataset.
	Schema() (row.Schema, error)
	// Splits divides the input. numSplits is the job's requested degree of
	// parallelism; formats may return a different count (e.g. one split per
	// DFS block, or whatever a stream coordinator dictates).
	Splits(numSplits int) ([]InputSplit, error)
	// Open returns a reader for the split. readerNode is the node the
	// consuming worker was placed on; formats charge remote reads to the
	// cost model through it.
	Open(split InputSplit, readerNode *cluster.Node) (RecordReader, error)
}

// FileSplit is a byte range of a DFS file.
type FileSplit struct {
	Path   string
	Offset int64
	Len    int64
	Hosts  []string
}

// Locations implements InputSplit.
func (s *FileSplit) Locations() []string { return s.Hosts }

// Length implements InputSplit.
func (s *FileSplit) Length() int64 { return s.Len }

// String implements InputSplit.
func (s *FileSplit) String() string {
	return fmt.Sprintf("%s[%d:+%d]", s.Path, s.Offset, s.Len)
}

// TextTableFormat reads a text-format table file stored on the DFS.
type TextTableFormat struct {
	FS          *dfs.FileSystem
	Path        string
	TableSchema row.Schema
}

// NewTextTableFormat returns a format over one DFS text table.
func NewTextTableFormat(fs *dfs.FileSystem, path string, schema row.Schema) *TextTableFormat {
	return &TextTableFormat{FS: fs, Path: path, TableSchema: schema}
}

// Schema implements InputFormat.
func (f *TextTableFormat) Schema() (row.Schema, error) { return f.TableSchema, nil }

// Splits implements InputFormat. With numSplits <= 0 it returns one split
// per DFS block (inheriting the block's replica hosts for locality);
// otherwise it divides the file into numSplits even byte ranges whose
// locations are the hosts of the blocks they overlap.
func (f *TextTableFormat) Splits(numSplits int) ([]InputSplit, error) {
	info, err := f.FS.Stat(f.Path)
	if err != nil {
		return nil, err
	}
	if info.Size == 0 {
		return nil, nil
	}
	if numSplits <= 0 {
		out := make([]InputSplit, 0, len(info.Blocks))
		for _, b := range info.Blocks {
			out = append(out, &FileSplit{Path: f.Path, Offset: b.Offset, Len: b.Length, Hosts: b.Hosts})
		}
		return out, nil
	}
	if int64(numSplits) > info.Size {
		numSplits = int(info.Size)
	}
	chunk := info.Size / int64(numSplits)
	var out []InputSplit
	for i := 0; i < numSplits; i++ {
		off := int64(i) * chunk
		length := chunk
		if i == numSplits-1 {
			length = info.Size - off
		}
		out = append(out, &FileSplit{
			Path:   f.Path,
			Offset: off,
			Len:    length,
			Hosts:  hostsOverlapping(info.Blocks, off, length),
		})
	}
	return out, nil
}

func hostsOverlapping(blocks []dfs.BlockLocation, off, length int64) []string {
	seen := make(map[string]bool)
	var hosts []string
	for _, b := range blocks {
		if b.Offset < off+length && off < b.Offset+b.Length {
			for _, h := range b.Hosts {
				if !seen[h] {
					seen[h] = true
					hosts = append(hosts, h)
				}
			}
		}
	}
	return hosts
}

// Open implements InputFormat.
func (f *TextTableFormat) Open(split InputSplit, readerNode *cluster.Node) (RecordReader, error) {
	fsplit, ok := split.(*FileSplit)
	if !ok {
		return nil, fmt.Errorf("hadoopfmt: TextTableFormat cannot open %T", split)
	}
	info, err := f.FS.Stat(fsplit.Path)
	if err != nil {
		return nil, err
	}
	// Read from the split start to EOF: the reader must be able to finish
	// the final line even when it crosses the split boundary (the standard
	// Hadoop TextInputFormat convention).
	rd, err := f.FS.OpenRange(fsplit.Path, fsplit.Offset, info.Size-fsplit.Offset, readerNode)
	if err != nil {
		return nil, err
	}
	lr := &lineRecordReader{
		r:      bufio.NewReaderSize(rd, 64<<10),
		closer: rd,
		schema: f.TableSchema,
		limit:  fsplit.Len,
	}
	if fsplit.Offset > 0 {
		// Skip the (partial) first line: it belongs to the previous split.
		skipped, err := lr.r.ReadString('\n')
		if err == io.EOF {
			lr.done = true
		} else if err != nil {
			if cerr := rd.Close(); cerr != nil {
				err = errors.Join(err, cerr)
			}
			return nil, err
		}
		lr.consumed += int64(len(skipped))
	}
	return lr, nil
}

// lineRecordReader yields one row per text line. A split owns every line
// that *starts* strictly inside it (plus the line starting at offset 0 when
// the split begins the file), so adjacent splits partition lines exactly.
type lineRecordReader struct {
	r        *bufio.Reader
	closer   io.Closer
	schema   row.Schema
	limit    int64 // bytes of the split; lines starting beyond it belong to the next split
	consumed int64
	done     bool
}

// Next implements RecordReader.
func (l *lineRecordReader) Next() (row.Row, bool, error) {
	if l.done || l.consumed > l.limit {
		return nil, false, nil
	}
	line, err := l.r.ReadString('\n')
	if err == io.EOF {
		l.done = true
		if line == "" {
			return nil, false, nil
		}
	} else if err != nil {
		return nil, false, err
	}
	l.consumed += int64(len(line))
	if n := len(line); n > 0 && line[n-1] == '\n' {
		line = line[:n-1]
	}
	r, derr := row.DecodeLine(line, l.schema)
	if derr != nil {
		return nil, false, fmt.Errorf("hadoopfmt: %s: %w", l.schema, derr)
	}
	return r, true, nil
}

// Close implements RecordReader.
func (l *lineRecordReader) Close() error {
	if l.closer != nil {
		return l.closer.Close()
	}
	return nil
}

// TextTableWriter streams rows into a DFS text table file one at a time,
// so producers can interleave writing with row production instead of
// materializing the full partition first.
type TextTableWriter struct {
	w      *dfs.Writer
	schema row.Schema
	buf    []byte
	total  int64
}

// NewTextTableWriter creates (or replaces) the file at path and returns a
// row-at-a-time writer.
func NewTextTableWriter(fs *dfs.FileSystem, path string, schema row.Schema, node *cluster.Node) (*TextTableWriter, error) {
	w, err := fs.Create(path, node)
	if err != nil {
		return nil, err
	}
	return &TextTableWriter{w: w, schema: schema}, nil
}

// WriteRow appends one row. On any error the underlying file is aborted.
func (t *TextTableWriter) WriteRow(r row.Row) error {
	if err := r.Conforms(t.schema); err != nil {
		t.w.Abort()
		return err
	}
	t.buf = row.AppendLine(t.buf[:0], r)
	if _, err := t.w.Write(t.buf); err != nil {
		t.w.Abort()
		return err
	}
	t.total += int64(len(t.buf))
	return nil
}

// Close commits the file and returns the number of bytes written.
func (t *TextTableWriter) Close() (int64, error) {
	if err := t.w.Close(); err != nil {
		return 0, err
	}
	return t.total, nil
}

// Abort discards the file.
func (t *TextTableWriter) Abort() { t.w.Abort() }

// WriteTextTable writes rows to a DFS path in the text table format,
// returning the number of bytes written. It is the common sink used by the
// MapReduce output stage; the SQL engine's export streams through
// TextTableWriter directly.
func WriteTextTable(fs *dfs.FileSystem, path string, schema row.Schema, rows []row.Row, node *cluster.Node) (int64, error) {
	w, err := NewTextTableWriter(fs, path, schema, node)
	if err != nil {
		return 0, err
	}
	for _, r := range rows {
		if err := w.WriteRow(r); err != nil {
			return 0, err
		}
	}
	return w.Close()
}

// ReadAll drains an InputFormat completely (all splits, sequentially) and
// returns the rows. It is a convenience for tests and small inputs.
func ReadAll(f InputFormat, node *cluster.Node) ([]row.Row, error) {
	splits, err := f.Splits(0)
	if err != nil {
		return nil, err
	}
	var out []row.Row
	var buf []row.Row
	for _, s := range splits {
		rr, err := f.Open(s, node)
		if err != nil {
			return nil, err
		}
		for {
			batch, ok, err := ReadBatch(rr, buf[:0])
			if err != nil {
				if cerr := rr.Close(); cerr != nil {
					err = errors.Join(err, cerr)
				}
				return nil, err
			}
			if !ok {
				break
			}
			out = append(out, batch...)
			buf = batch
		}
		if err := rr.Close(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SliceFormat adapts an in-memory row slice to InputFormat; used by tests
// and by the MapReduce engine for small side inputs.
type SliceFormat struct {
	Rows      []row.Row
	RowSchema row.Schema
	// Hosts optionally pins every split's locality.
	Hosts []string
}

// Schema implements InputFormat.
func (s *SliceFormat) Schema() (row.Schema, error) { return s.RowSchema, nil }

// Splits implements InputFormat, dividing the slice into numSplits runs.
func (s *SliceFormat) Splits(numSplits int) ([]InputSplit, error) {
	if numSplits <= 0 {
		numSplits = 1
	}
	if numSplits > len(s.Rows) {
		numSplits = len(s.Rows)
	}
	if numSplits == 0 {
		return nil, nil
	}
	var out []InputSplit
	per := (len(s.Rows) + numSplits - 1) / numSplits
	for off := 0; off < len(s.Rows); off += per {
		end := off + per
		if end > len(s.Rows) {
			end = len(s.Rows)
		}
		out = append(out, &sliceSplit{rows: s.Rows[off:end], hosts: s.Hosts, id: off})
	}
	return out, nil
}

// Open implements InputFormat.
func (s *SliceFormat) Open(split InputSplit, _ *cluster.Node) (RecordReader, error) {
	ss, ok := split.(*sliceSplit)
	if !ok {
		return nil, fmt.Errorf("hadoopfmt: SliceFormat cannot open %T", split)
	}
	return &sliceReader{rows: ss.rows}, nil
}

type sliceSplit struct {
	rows  []row.Row
	hosts []string
	id    int
}

func (s *sliceSplit) Locations() []string { return s.hosts }
func (s *sliceSplit) Length() int64       { return int64(len(s.rows)) }
func (s *sliceSplit) String() string      { return fmt.Sprintf("slice@%d(%d rows)", s.id, len(s.rows)) }

type sliceReader struct {
	rows []row.Row
	i    int
}

func (r *sliceReader) Next() (row.Row, bool, error) {
	if r.i >= len(r.rows) {
		return nil, false, nil
	}
	out := r.rows[r.i]
	r.i++
	return out, true, nil
}

func (r *sliceReader) Close() error { return nil }

// RetryableError marks a split-read failure that the consuming system
// should handle by re-executing the task: re-open the split with a fresh
// reader and discard any partially accumulated rows. The parallel streaming
// transfer uses it to signal the paper's §6 restart protocol (restart the
// SQL worker and all of its ML workers) to the ML engine; the MapReduce
// engine's per-task attempt loop (mapred.Run) honors it the same way, and
// the fault-injection layer (internal/fault.TaskFaults) produces it to
// script deterministic task crashes.
type RetryableError struct {
	Err error
}

// Error implements error.
func (e *RetryableError) Error() string { return "retryable: " + e.Err.Error() }

// Unwrap supports errors.Is/As.
func (e *RetryableError) Unwrap() error { return e.Err }

// IsRetryable reports whether err (or anything it wraps) is a
// RetryableError.
func IsRetryable(err error) bool {
	var re *RetryableError
	return errors.As(err, &re)
}
