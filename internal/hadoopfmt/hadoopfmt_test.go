package hadoopfmt

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"sqlml/internal/cluster"
	"sqlml/internal/dfs"
	"sqlml/internal/row"
)

func tableSchema() row.Schema {
	return row.MustSchema(
		row.Column{Name: "id", Type: row.TypeInt},
		row.Column{Name: "name", Type: row.TypeString},
	)
}

func makeRows(n int, rng *rand.Rand) []row.Row {
	names := []string{"alice", "bob", "carol", "with,comma", `with"quote`, "", "longer-name-to-vary-line-lengths"}
	rows := make([]row.Row, n)
	for i := range rows {
		name := row.String_(names[rng.Intn(len(names))])
		if rng.Intn(10) == 0 {
			name = row.NullOf(row.TypeString)
		}
		rows[i] = row.Row{row.Int(int64(i)), name}
	}
	return rows
}

func writeTable(t testing.TB, fs *dfs.FileSystem, path string, rows []row.Row) {
	t.Helper()
	if _, err := WriteTextTable(fs, path, tableSchema(), rows, fs.Topology().Node(0)); err != nil {
		t.Fatal(err)
	}
}

func collect(t testing.TB, f InputFormat, splits []InputSplit, node *cluster.Node) []row.Row {
	t.Helper()
	var out []row.Row
	for _, s := range splits {
		rr, err := f.Open(s, node)
		if err != nil {
			t.Fatal(err)
		}
		for {
			r, ok, err := rr.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			out = append(out, r)
		}
		if err := rr.Close(); err != nil {
			t.Fatalf("close reader: %v", err)
		}
	}
	return out
}

func idsOf(rows []row.Row) []int64 {
	ids := make([]int64, len(rows))
	for i, r := range rows {
		ids[i] = r[0].AsInt()
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func TestReadAllMatchesWritten(t *testing.T) {
	topo := cluster.NewTopology(3)
	fs := dfs.New(topo, dfs.Config{BlockSize: 64, Replication: 2})
	rng := rand.New(rand.NewSource(1))
	rows := makeRows(200, rng)
	writeTable(t, fs, "/tbl", rows)
	f := NewTextTableFormat(fs, "/tbl", tableSchema())
	got, err := ReadAll(f, topo.Node(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) {
		t.Fatalf("got %d rows, want %d", len(got), len(rows))
	}
	for i := range got {
		if !got[i].Equal(rows[i]) {
			t.Fatalf("row %d mismatch: %v vs %v", i, got[i], rows[i])
		}
	}
}

// TestSplitsPartitionLinesExactly is the critical Hadoop-semantics test:
// for every requested split count, the union of rows over splits must equal
// the table with no duplicates or losses, regardless of where byte
// boundaries land relative to lines.
func TestSplitsPartitionLinesExactly(t *testing.T) {
	topo := cluster.NewTopology(3)
	fs := dfs.New(topo, dfs.Config{BlockSize: 37, Replication: 1})
	rng := rand.New(rand.NewSource(7))
	rows := makeRows(150, rng)
	writeTable(t, fs, "/part", rows)
	f := NewTextTableFormat(fs, "/part", tableSchema())

	for _, numSplits := range []int{1, 2, 3, 5, 8, 13, 50} {
		splits, err := f.Splits(numSplits)
		if err != nil {
			t.Fatal(err)
		}
		got := collect(t, f, splits, topo.Node(0))
		ids := idsOf(got)
		if len(ids) != len(rows) {
			t.Fatalf("numSplits=%d: got %d rows, want %d", numSplits, len(ids), len(rows))
		}
		for i, id := range ids {
			if id != int64(i) {
				t.Fatalf("numSplits=%d: ids[%d]=%d (duplicate or lost row)", numSplits, i, id)
			}
		}
	}
}

func TestBlockAlignedSplitsCarryLocality(t *testing.T) {
	topo := cluster.NewTopology(4)
	fs := dfs.New(topo, dfs.Config{BlockSize: 53, Replication: 2})
	rng := rand.New(rand.NewSource(3))
	writeTable(t, fs, "/loc", makeRows(100, rng))
	f := NewTextTableFormat(fs, "/loc", tableSchema())
	splits, err := f.Splits(0) // block-aligned
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) < 2 {
		t.Fatalf("expected multiple block splits, got %d", len(splits))
	}
	for _, s := range splits {
		if len(s.Locations()) != 2 {
			t.Errorf("split %s has %d locations, want 2 (replication)", s, len(s.Locations()))
		}
	}
	got := collect(t, f, splits, topo.Node(0))
	if len(got) != 100 {
		t.Errorf("block splits returned %d rows, want 100", len(got))
	}
}

func TestEmptyTableHasNoSplits(t *testing.T) {
	topo := cluster.NewTopology(1)
	fs := dfs.New(topo, dfs.Config{})
	writeTable(t, fs, "/empty", nil)
	f := NewTextTableFormat(fs, "/empty", tableSchema())
	splits, err := f.Splits(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 0 {
		t.Errorf("empty table produced %d splits", len(splits))
	}
}

func TestSplitsNeverExceedBytes(t *testing.T) {
	topo := cluster.NewTopology(1)
	fs := dfs.New(topo, dfs.Config{BlockSize: 1024})
	writeTable(t, fs, "/tiny", makeRows(2, rand.New(rand.NewSource(1))))
	f := NewTextTableFormat(fs, "/tiny", tableSchema())
	splits, err := f.Splits(1000) // far more than bytes in the file
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, f, splits, topo.Node(0))
	if len(got) != 2 {
		t.Errorf("oversplit table returned %d rows, want 2", len(got))
	}
}

func TestPartitionProperty(t *testing.T) {
	topo := cluster.NewTopology(2)
	i := 0
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fs := dfs.New(topo, dfs.Config{BlockSize: int64(16 + rng.Intn(100)), Replication: 1})
		n := 1 + rng.Intn(80)
		rows := makeRows(n, rng)
		i++
		path := fmt.Sprintf("/p/%d", i)
		if _, err := WriteTextTable(fs, path, tableSchema(), rows, topo.Node(0)); err != nil {
			return false
		}
		fm := NewTextTableFormat(fs, path, tableSchema())
		numSplits := 1 + rng.Intn(12)
		splits, err := fm.Splits(numSplits)
		if err != nil {
			return false
		}
		var got []row.Row
		for _, s := range splits {
			rr, err := fm.Open(s, topo.Node(rng.Intn(2)))
			if err != nil {
				return false
			}
			for {
				r, ok, err := rr.Next()
				if err != nil {
					return false
				}
				if !ok {
					break
				}
				got = append(got, r)
			}
			if err := rr.Close(); err != nil {
				return false
			}
		}
		ids := idsOf(got)
		if len(ids) != n {
			return false
		}
		for j, id := range ids {
			if id != int64(j) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestSliceFormat(t *testing.T) {
	rows := makeRows(10, rand.New(rand.NewSource(2)))
	sf := &SliceFormat{Rows: rows, RowSchema: tableSchema(), Hosts: []string{"10.0.0.1"}}
	splits, err := sf.Splits(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 3 {
		t.Fatalf("splits = %d", len(splits))
	}
	if splits[0].Locations()[0] != "10.0.0.1" {
		t.Error("locality not propagated")
	}
	got := collect(t, sf, splits, nil)
	if len(got) != 10 {
		t.Errorf("slice format returned %d rows", len(got))
	}
	if _, err := (&SliceFormat{}).Splits(4); err != nil {
		t.Errorf("empty slice format: %v", err)
	}
}

func TestWriteTextTableRejectsNonConformingRows(t *testing.T) {
	topo := cluster.NewTopology(1)
	fs := dfs.New(topo, dfs.Config{})
	bad := []row.Row{{row.String_("not-an-int"), row.String_("x")}}
	if _, err := WriteTextTable(fs, "/bad", tableSchema(), bad, topo.Node(0)); err == nil {
		t.Error("non-conforming row accepted")
	}
	if fs.Exists("/bad") {
		t.Error("aborted write left a file behind")
	}
}

func TestOpenRejectsForeignSplitType(t *testing.T) {
	topo := cluster.NewTopology(1)
	fs := dfs.New(topo, dfs.Config{})
	writeTable(t, fs, "/x", makeRows(1, rand.New(rand.NewSource(1))))
	f := NewTextTableFormat(fs, "/x", tableSchema())
	if _, err := f.Open(&sliceSplit{}, nil); err == nil {
		t.Error("foreign split type accepted")
	}
}
