// Churn caching: the §5 scenario — an analyst iterates on related
// preparation queries, and the query rewriter decides per query whether
// the cached fully-transformed result (§5.1), the cached recode maps
// (§5.2), or nothing can be reused. The three queries below are exactly
// the paper's examples.
//
//	go run ./examples/churn_caching
package main

import (
	"fmt"
	"log"

	"sqlml/internal/cluster"
	"sqlml/internal/core"
	"sqlml/internal/datagen"
	"sqlml/internal/transform"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := core.DefaultEnvConfig()
	cfg.Cost = cluster.DefaultCostModel()
	cfg.Cost.TimeScale = 0
	env, err := core.NewEnv(cfg)
	if err != nil {
		return err
	}
	defer env.Close()

	data, err := datagen.Generate(datagen.Config{Users: 400, CartsPerUser: 50, Seed: 3})
	if err != nil {
		return err
	}
	usersPath, cartsPath, err := datagen.WriteToDFS(data, env.FS, "/warehouse", env.Topo.Node(1))
	if err != nil {
		return err
	}
	if err := env.Engine.RegisterExternalTable("users", env.FS, usersPath, datagen.UsersSchema()); err != nil {
		return err
	}
	if err := env.Engine.RegisterExternalTable("carts", env.FS, cartsPath, datagen.CartsSchema()); err != nil {
		return err
	}

	base := core.PipelineConfig{
		Spec: transform.Spec{
			RecodeCols: []string{"gender", "abandoned"},
		},
		LabelCol:       "abandoned",
		LabelTransform: func(v float64) float64 { return v - 1 },
		K:              1,
		Tier:           core.CacheFullResult,
	}

	runOne := func(title, query string, spec transform.Spec, populate bool) error {
		cfg := base
		cfg.Query = query
		cfg.Spec = spec
		cfg.CachePopulate = populate
		env.Cost.ResetStats()
		res, err := core.Run(env, core.InSQLStream, cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", title, err)
		}
		fmt.Printf("%-34s cache=%-11s rows=%-6d simulated=%v\n",
			title, res.CacheHit, res.Rows, env.Cost.Stats().SimulatedTime.Round(1000))
		return nil
	}

	// Query 1 (the §1 preparation query) runs cold and populates the cache.
	if err := runOne("1. initial preparation query", `
		SELECT U.age, U.gender, C.amount, C.abandoned
		FROM carts C, users U
		WHERE C.userid=U.userid AND U.country='USA'`,
		base.Spec, true); err != nil {
		return err
	}

	// Query 2 (§5.1's example): same joins and predicates, a projected
	// subset, plus an extra predicate on a projected field → the fully
	// transformed cached result answers it outright.
	if err := runOne("2. subset query (5.1 full reuse)", `
		SELECT U.age, C.amount, C.abandoned
		FROM carts C, users U
		WHERE C.userid=U.userid AND U.country='USA' AND U.gender = 'F'`,
		transform.Spec{RecodeCols: []string{"abandoned"}}, false); err != nil {
		return err
	}

	// Query 3 (§5.2's example): projects a new column (nitems) and filters
	// on a new one (year) → the full result cannot be reused, but the
	// recode maps can, skipping one of recoding's two passes.
	if err := runOne("3. extended query (5.2 map reuse)", `
		SELECT U.age, U.gender, C.amount, C.nItems, C.abandoned
		FROM carts C, users U
		WHERE C.userid=U.userid AND U.country='USA' AND C.year = 2014`,
		base.Spec, false); err != nil {
		return err
	}

	// Query 4: different predicates → the cache cannot help at all.
	if err := runOne("4. unrelated query (miss)", `
		SELECT U.age, U.gender, C.amount, C.abandoned
		FROM carts C, users U
		WHERE C.userid=U.userid AND U.country='Germany'`,
		base.Spec, false); err != nil {
		return err
	}

	stats := env.Cache.Stats()
	fmt.Printf("\ncache store: %d entries; hits by tier: %v\n", env.Cache.Len(), stats)
	return nil
}
