// Cart abandonment: the paper's §1 motivating scenario end to end, at
// simulation scale — an online retailer's carts and users tables live as
// text files on the (simulated) DFS; an analyst prepares training data
// with a SQL join, recodes and dummy-codes the categorical variables
// In-SQL, streams the result to the ML engine through the coordinator
// (never touching the file system), and builds an SVM classifier for
// shopping-cart abandonment.
//
//	go run ./examples/cart_abandonment
package main

import (
	"fmt"
	"log"
	"time"

	"sqlml/internal/cluster"
	"sqlml/internal/core"
	"sqlml/internal/datagen"
	"sqlml/internal/ml"
	"sqlml/internal/transform"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Deployment: 5 nodes, DFS with 3-way replication, a cost model that
	// both sleeps a little (TimeScale) and accumulates simulated time, so
	// the printed cluster seconds mean something.
	cfg := core.DefaultEnvConfig()
	cfg.Cost = cluster.DefaultCostModel()
	cfg.Cost.TimeScale = 0 // accumulate simulated time without sleeping
	env, err := core.NewEnv(cfg)
	if err != nil {
		return err
	}
	defer env.Close()

	// The warehouse: synthetic carts (100 per user) and users tables in
	// text format on the DFS, exactly the §7 setup at 1:2000 scale.
	data, err := datagen.Generate(datagen.Config{Users: 500, CartsPerUser: 100, Seed: 42})
	if err != nil {
		return err
	}
	usersPath, cartsPath, err := datagen.WriteToDFS(data, env.FS, "/warehouse", env.Topo.Node(1))
	if err != nil {
		return err
	}
	if err := env.Engine.RegisterExternalTable("users", env.FS, usersPath, datagen.UsersSchema()); err != nil {
		return err
	}
	if err := env.Engine.RegisterExternalTable("carts", env.FS, cartsPath, datagen.CartsSchema()); err != nil {
		return err
	}
	fmt.Printf("warehouse: %d users, %d carts on the DFS\n", len(data.Users), len(data.Carts))

	// The §1 preparation query + transformation, streamed to ML (the
	// insql+stream approach — Figure 3's winner). Beyond the paper's
	// recode+dummy steps, age and amount are standardized In-SQL so the
	// SGD steps are well conditioned.
	pipeline := core.PipelineConfig{
		Query: `
			SELECT U.age, U.gender, C.amount, C.abandoned
			FROM carts C, users U
			WHERE C.userid=U.userid AND U.country='USA'`,
		Spec: transform.Spec{
			RecodeCols: []string{"gender", "abandoned"},
			CodeCols:   []string{"gender"},
			Coding:     transform.CodingDummy,
			ScaleCols:  []string{"age", "amount"},
			Scaling:    transform.ScalingStandard,
		},
		LabelCol:       "abandoned",
		LabelTransform: func(v float64) float64 { return v - 1 },
		K:              2,
	}
	res, err := core.Run(env, core.InSQLStream, pipeline)
	if err != nil {
		return err
	}
	fmt.Printf("pipeline: %d training rows streamed into %d ML partitions (wall %s, simulated cluster time %s)\n",
		res.Rows, len(res.Dataset.Parts),
		res.Timings.Total.Round(time.Millisecond),
		env.Cost.Stats().SimulatedTime.Round(time.Microsecond))

	// Train on 70%, evaluate on held-out 30%.
	train, test, err := ml.TrainTestSplit(res.Dataset, 0.3, 1)
	if err != nil {
		return err
	}
	sgd := ml.DefaultSGD()
	sgd.Iterations = 200
	sgd.StepSize = 0.1
	model, err := ml.TrainSVMWithSGD(train, sgd)
	if err != nil {
		return err
	}
	m := ml.EvaluateBinary(test, model.Predict)
	fmt.Printf("SVM abandonment classifier (held-out): %s\n", m)
	fmt.Printf("held-out AUC: %.3f\n", ml.AUC(test, model.Margin))

	// Persist the model to the DFS, as a production pipeline would, and
	// prove the loaded copy predicts identically.
	if err := ml.SaveModel(env.FS, "/models/abandonment-svm", model, env.Topo.Node(1)); err != nil {
		return err
	}
	loaded, err := ml.LoadModel(env.FS, "/models/abandonment-svm", env.Topo.Node(2))
	if err != nil {
		return err
	}
	reloaded := loaded.(*ml.LinearModel)
	m2 := ml.EvaluateBinary(test, reloaded.Predict)
	fmt.Printf("model saved to DFS and reloaded: accuracy %.3f (same: %v)\n",
		m2.Accuracy(), m2 == m)

	// The same prepared data serves other classifiers without re-running
	// the pipeline — the use case §5.1 motivates caching with.
	bayesData := res.Dataset
	nb, err := ml.TrainNaiveBayes(scaleNonNeg(bayesData), 1.0)
	if err != nil {
		return err
	}
	fmt.Printf("naive Bayes on the same data: train accuracy %.3f\n",
		ml.Accuracy(scaleNonNeg(bayesData), nb.Predict))
	tree, err := ml.TrainDecisionTree(res.Dataset, ml.DefaultTree())
	if err != nil {
		return err
	}
	fmt.Printf("decision tree (depth %d): train accuracy %.3f\n",
		tree.Depth, ml.Accuracy(res.Dataset, tree.Predict))
	return nil
}

// scaleNonNeg clips features to be non-negative for multinomial naive
// Bayes (ages and dummy bits already are; amounts too).
func scaleNonNeg(d *ml.Dataset) *ml.Dataset {
	out := &ml.Dataset{Parts: make([][]ml.LabeledPoint, len(d.Parts)), Nodes: d.Nodes, NumFeatures: d.NumFeatures}
	for i, part := range d.Parts {
		np := make([]ml.LabeledPoint, len(part))
		for j, p := range part {
			f := make([]float64, len(p.Features))
			for k, x := range p.Features {
				if x < 0 {
					x = 0
				}
				f[k] = x
			}
			np[j] = ml.LabeledPoint{Label: p.Label, Features: f}
		}
		out.Parts[i] = np
	}
	return out
}
