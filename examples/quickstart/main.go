// Quickstart: the smallest end-to-end use of the library — load two tiny
// tables into the MPP SQL engine, run the paper's preparation query,
// transform the result In-SQL (recode + dummy code via table UDFs), and
// train an SVM on the outcome.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sqlml/internal/cluster"
	"sqlml/internal/hadoopfmt"
	"sqlml/internal/ml"
	"sqlml/internal/row"
	"sqlml/internal/sqlengine"
	"sqlml/internal/transform"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A 5-node simulated cluster: node 0 is the SQL head node, nodes 1-4
	// host one SQL worker each (the paper's testbed layout).
	topo := cluster.NewTopology(5)
	engine, err := sqlengine.New(topo, nil, sqlengine.Config{
		HeadNodeID:    0,
		WorkerNodeIDs: []int{1, 2, 3, 4},
	})
	if err != nil {
		return err
	}
	// The In-SQL transformation UDFs: distinct_values, assign_recode_ids,
	// dummy_code, ...
	if err := transform.RegisterUDFs(engine); err != nil {
		return err
	}

	// Figure 1(a)'s table, extended with a couple more rows.
	schema := row.MustSchema(
		row.Column{Name: "age", Type: row.TypeInt},
		row.Column{Name: "gender", Type: row.TypeString},
		row.Column{Name: "amount", Type: row.TypeFloat},
		row.Column{Name: "abandoned", Type: row.TypeString},
	)
	rows := []row.Row{
		{row.Int(57), row.String_("F"), row.Float(314.62), row.String_("Yes")},
		{row.Int(40), row.String_("M"), row.Float(40.40), row.String_("Yes")},
		{row.Int(35), row.String_("F"), row.Float(151.17), row.String_("No")},
		{row.Int(28), row.String_("M"), row.Float(305.50), row.String_("Yes")},
		{row.Int(64), row.String_("F"), row.Float(12.25), row.String_("No")},
		{row.Int(45), row.String_("M"), row.Float(99.99), row.String_("No")},
	}
	if err := engine.LoadTable("carts", schema, rows); err != nil {
		return err
	}

	// Plain SQL works against the engine.
	res, err := engine.Query("SELECT COUNT(*), AVG(amount) FROM carts WHERE abandoned = 'Yes'")
	if err != nil {
		return err
	}
	fmt.Printf("abandoned carts: count=%v avg amount=%v\n", res.Rows()[0][0], res.Rows()[0][1])

	// The In-SQL transformation: two-phase distributed recoding of the
	// categorical columns, then dummy coding of gender — all as parallel
	// table UDFs inside the engine.
	out, err := transform.Apply(engine, "carts", transform.Spec{
		RecodeCols: []string{"gender", "abandoned"},
		CodeCols:   []string{"gender"},
		Coding:     transform.CodingDummy,
	}, nil)
	if err != nil {
		return err
	}
	defer engine.DropTable(out.MapTable)
	fmt.Printf("transformed schema: %s\n", out.Result.Schema)
	fmt.Printf("recode map: gender has %d levels, abandoned has %d\n",
		out.Map.Cardinality("gender"), out.Map.Cardinality("abandoned"))

	// Hand the transformed rows to the ML engine. Here the handover is the
	// simplest possible InputFormat (an in-memory slice); the streaming
	// examples show the coordinator-mediated transfer.
	dataset, err := ml.Ingest(&hadoopfmt.SliceFormat{
		Rows:      out.Result.Rows(),
		RowSchema: out.Result.Schema,
	}, ml.IngestOptions{
		LabelCol: "abandoned",
		// Recoded labels are {1:'No', 2:'Yes'}; SVM wants {0,1}.
		LabelTransform: func(v float64) float64 { return v - 1 },
		Nodes:          topo.Nodes(),
	})
	if err != nil {
		return err
	}
	model, err := ml.TrainSVMWithSGD(dataset, ml.DefaultSGD())
	if err != nil {
		return err
	}
	fmt.Printf("SVM trained on %d rows x %d features, train accuracy %.2f\n",
		dataset.NumRows(), dataset.NumFeatures, ml.Accuracy(dataset, model.Predict))
	return nil
}
