// MapReduce ML: the genericity claim in action — the same parallel
// streaming transfer that feeds the in-memory ML engine feeds a completely
// different ML system (a Mahout-style naive Bayes trained as a MapReduce
// job) with zero changes to the transfer: the MapReduce job simply uses
// the SQLStreamInputFormat as its input, because "any big ML system that
// uses Hadoop InputFormats to ingest input data" is supported.
//
//	go run ./examples/mapreduce_ml
package main

import (
	"fmt"
	"log"

	"sqlml/internal/cluster"
	"sqlml/internal/core"
	"sqlml/internal/datagen"
	"sqlml/internal/ml"
	"sqlml/internal/stream"
	"sqlml/internal/transform"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := core.DefaultEnvConfig()
	cfg.Cost = cluster.DefaultCostModel()
	cfg.Cost.TimeScale = 0
	env, err := core.NewEnv(cfg)
	if err != nil {
		return err
	}
	defer env.Close()

	data, err := datagen.Generate(datagen.Config{Users: 300, CartsPerUser: 40, Seed: 5})
	if err != nil {
		return err
	}
	usersPath, cartsPath, err := datagen.WriteToDFS(data, env.FS, "/warehouse", env.Topo.Node(1))
	if err != nil {
		return err
	}
	if err := env.Engine.RegisterExternalTable("users", env.FS, usersPath, datagen.UsersSchema()); err != nil {
		return err
	}
	if err := env.Engine.RegisterExternalTable("carts", env.FS, cartsPath, datagen.CartsSchema()); err != nil {
		return err
	}

	// Prepare + transform In-SQL, as always.
	prep, err := env.Engine.Query(`
		SELECT U.age, U.gender, C.amount, C.abandoned
		FROM carts C, users U
		WHERE C.userid=U.userid AND U.country='USA'`)
	if err != nil {
		return err
	}
	if err := env.Engine.RegisterResult("prep", prep); err != nil {
		return err
	}
	out, err := transform.Apply(env.Engine, "prep", transform.Spec{
		RecodeCols: []string{"gender", "abandoned"},
		CodeCols:   []string{"gender"},
		Coding:     transform.CodingDummy,
	}, nil)
	if err != nil {
		return err
	}
	if err := env.Engine.RegisterResult("prepared", out.Result); err != nil {
		return err
	}
	fmt.Printf("prepared %d rows: %s\n", out.Result.NumRows(), out.Result.Schema)

	// ML side: a MapReduce-trained naive Bayes whose ONLY coupling to the
	// SQL side is the InputFormat. It asks the coordinator for its splits
	// (the customized getInputSplits), its map tasks are the stream
	// consumers, and the job writes its model statistics to the DFS.
	job := "mr-naive-bayes"
	type result struct {
		model *ml.NaiveBayesModel
		err   error
	}
	done := make(chan result, 1)
	go func() {
		f := &stream.InputFormat{CoordAddr: env.CoordAddr, Job: job}
		model, err := ml.TrainNaiveBayesMR(&ml.MREnv{
			Topo:      env.Topo,
			FS:        env.FS,
			Cost:      env.Cost,
			TaskNodes: env.WorkerIDs,
		}, f, ml.IngestOptions{
			LabelCol:       "abandoned",
			LabelTransform: func(v float64) float64 { return v - 1 },
			Nodes:          env.WorkerNodes(),
		}, 1.0, "/models/nb")
		done <- result{model, err}
	}()

	// SQL side: stream the prepared table to whatever registered for the
	// job — it neither knows nor cares that the consumer is MapReduce.
	sendSQL := fmt.Sprintf(
		"SELECT * FROM TABLE(stream_send(prepared, '%s', '%s', 'naive-bayes', 1))",
		env.CoordAddr, job)
	if _, err := env.Engine.Query(sendSQL); err != nil {
		return err
	}
	res := <-done
	if res.err != nil {
		return res.err
	}
	fmt.Printf("MapReduce naive Bayes trained: %d classes, model stats on DFS under /models/nb\n",
		len(res.model.Labels))
	for _, f := range env.FS.List("/models/nb") {
		fmt.Printf("  %s\n", f)
	}

	// Sanity: the model classifies the training distribution better than
	// chance (evaluated through the in-memory engine for convenience).
	eval, err := core.Run(env, core.InSQL, core.PipelineConfig{
		Query: `
			SELECT U.age, U.gender, C.amount, C.abandoned
			FROM carts C, users U
			WHERE C.userid=U.userid AND U.country='USA'`,
		Spec: transform.Spec{
			RecodeCols: []string{"gender", "abandoned"},
			CodeCols:   []string{"gender"},
			Coding:     transform.CodingDummy,
		},
		LabelCol:       "abandoned",
		LabelTransform: func(v float64) float64 { return v - 1 },
	})
	if err != nil {
		return err
	}
	fmt.Printf("train accuracy: %.3f\n", ml.Accuracy(eval.Dataset, res.model.Predict))
	return nil
}
