// Package sqlml is a from-scratch Go reproduction of "A Generic Solution
// to Integrate SQL and Analytics for Big Data" (EDBT 2015): an MPP SQL
// engine with In-SQL transformation UDFs, a distributed ML engine ingesting
// through Hadoop-style InputFormats, a coordinator-mediated parallel
// streaming transfer between them, and the transformation-result caching
// the paper evaluates.
//
// The public surface lives in the internal packages (this module is a
// research artifact, not a semver-stable library); see README.md for the
// architecture map and examples/ for runnable entry points. The root
// package exists to carry the repository-level benchmarks in bench_test.go,
// which regenerate every table and figure of the paper's evaluation.
package sqlml
