# Developer entry points; CI runs the same commands (see
# .github/workflows/ci.yml and scripts/lint.sh).

.PHONY: build test race lint lint-fast fuzz-smoke

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# Full lint: gofmt, go vet, sqlmlvet, pinned staticcheck + govulncheck.
lint:
	scripts/lint.sh

# Inner loop: gofmt + the sqlmlvet suite only (seconds, stdlib-only).
lint-fast:
	scripts/lint.sh --fast

fuzz-smoke:
	go test -run '^$$' -fuzz '^FuzzKeyCodec$$' -fuzztime 10s ./internal/row
	go test -run '^$$' -fuzz '^FuzzBlockFrame$$' -fuzztime 10s ./internal/row
